"""The two-phase primal-dual framework (Section 3.2, Figure 7).

The engine is the common core of every algorithm in the paper:

* **First phase** -- iterate over *epochs* (one per layered-decomposition
  group), *stages* (a sequence of satisfaction thresholds ``tau``), and
  *steps*: in each step, find an MIS of the still-``tau``-unsatisfied
  instances of the current group, raise the dual variables of every MIS
  member simultaneously (leaving their constraints tight), and push the
  MIS onto a stack.
* **Second phase** -- pop the stack in reverse and greedily admit
  instances that keep the solution feasible.

Algorithms differ only in (a) the layout (group + critical edges per
instance, i.e. the layered decomposition), (b) the threshold schedule
(the paper's multi-stage ``1 - xi^j`` thresholds, or Panconesi-Sozio's
single ``1/(5+eps)`` threshold), (c) the raise rule (unit or heights),
and (d) the MIS oracle.  The approximation guarantees of Lemma 3.1 and
Lemma 6.1 follow from the interference property of the layout.

Engines
-------

Two interchangeable first-phase engines sit behind the ``engine=``
switch of :func:`run_two_phase` / :func:`run_first_phase`:

* ``engine="reference"`` (default) -- the literal Figure 7 loop: every
  step rescans all group members for ``tau``-satisfaction and rebuilds
  the restricted conflict graph from scratch, ``O(steps x group^2)``
  work per stage.  It is the executable specification.
* ``engine="incremental"`` -- semantically identical, but maintains a
  per-(epoch, stage) *unsatisfied* set updated via dirty-sets: a dual
  raise on instance ``d`` moves ``alpha`` only for demand ``a_d`` and
  ``beta`` only on ``pi(d)``, so the instances whose satisfaction can
  flip are found through the prebuilt edge->instance index
  (:func:`repro.distributed.conflict.build_instance_index`).  Because
  raises only increase constraint LHS values, satisfaction is monotone
  within a stage and the set never needs a full rescan until the next
  threshold.  The per-step ``restrict()`` rebuild is replaced by an
  active-set adjacency view that shrinks as instances satisfy.

Both engines produce bit-identical artifacts (solutions, raise events,
stacks, schedule counters) for the bundled MIS oracles; the golden
equivalence suite in ``tests/test_engine_equivalence.py`` enforces
this.  :class:`PhaseCounters` exposes ``satisfaction_checks`` and
``adjacency_touches`` so the asymptotic win is measurable (see
``benchmarks/bench_e16_engine_scaling.py``).
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent, RaiseRule
from repro.core.solution import CapacityLedger, Solution
from repro.core.types import EdgeKey, InstanceId
from repro.distributed.conflict import (
    ConflictAdjacency,
    build_conflict_graph,
    build_instance_index,
    restrict,
)
from repro.distributed.mis import MISOracle, make_mis_oracle
from repro.trees.layered import LayeredDecomposition

#: The interchangeable first-phase engines (see the module docstring).
ENGINES = ("reference", "incremental")


@dataclass
class InstanceLayout:
    """Group index and critical edges for every instance of a problem.

    ``group_of`` is 1-based; epoch ``k`` of the first phase processes the
    union ``Gk`` of the ``k``-th groups of all per-network layered
    decompositions (Figure 7).
    """

    group_of: Dict[InstanceId, int]
    pi: Dict[InstanceId, Tuple[EdgeKey, ...]]
    n_epochs: int

    @property
    def critical_set_size(self) -> int:
        """``Delta``: the largest critical set over all instances."""
        if not self.pi:
            return 0
        return max(len(p) for p in self.pi.values())

    @staticmethod
    def from_layered(decompositions: Iterable[LayeredDecomposition]) -> "InstanceLayout":
        """Merge per-network layered decompositions (``Gk = U_q G(q)_k``)."""
        group_of: Dict[InstanceId, int] = {}
        pi: Dict[InstanceId, Tuple[EdgeKey, ...]] = {}
        n_epochs = 0
        for dec in decompositions:
            group_of.update(dec.group_of)
            pi.update(dec.pi)
            n_epochs = max(n_epochs, dec.length)
        return InstanceLayout(group_of=group_of, pi=pi, n_epochs=n_epochs)


def geometric_thresholds(xi: float, epsilon: float) -> List[float]:
    """The paper's stage thresholds ``1 - xi^j`` for ``j = 1..b``.

    ``b`` is the smallest integer with ``xi^b <= epsilon``, so after the
    last stage every instance of the epoch's group is ``(1-eps)``-satisfied.
    """
    if not 0 < xi < 1:
        raise ValueError(f"xi must lie in (0, 1), got {xi}")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    b = max(1, math.ceil(math.log(epsilon) / math.log(xi)))
    return [1.0 - xi**j for j in range(1, b + 1)]


def unit_xi(delta: int) -> float:
    """``xi = 2 Delta' / (2 Delta' + 1)`` with ``Delta' = Delta + 1``.

    Gives ``14/15`` for trees (``Delta = 6``) and ``8/9`` for lines
    (``Delta = 3``), the constants used in Sections 5 and 7.  This is
    the largest ``xi`` for which the kill-factor of Claim 5.2 is 2.
    """
    dprime = delta + 1
    return (2 * dprime) / (2 * dprime + 1)


def narrow_xi(delta: int, hmin: float) -> float:
    """``xi = c / (c + hmin)`` with ``c = 2 (1 + 2 Delta^2)`` (Section 6).

    Chosen so the kill-chain argument of Lemma 5.1 keeps a profit-doubling
    factor of at least 2 under the height raise rule, yielding
    ``O((1/hmin) log(1/eps))`` stages per epoch.
    """
    if not 0 < hmin <= 0.5:
        raise ValueError(f"hmin must lie in (0, 1/2], got {hmin}")
    c = 2.0 * (1 + 2 * delta * delta)
    return c / (c + hmin)


@dataclass
class PhaseCounters:
    """Work and communication accounting for one two-phase run."""

    epochs: int = 0
    stages: int = 0
    steps: int = 0
    raises: int = 0
    mis_rounds: int = 0
    #: max steps observed in any single (epoch, stage) -- Lemma 5.1's L.
    max_steps_per_stage: int = 0
    #: communication rounds: per step, Time(MIS) + 1 round to broadcast the
    #: new dual values; phase 2 costs one announcement round per stack entry.
    phase2_rounds: int = 0
    #: calls to ``DualState.is_satisfied`` made by the first phase -- the
    #: reference engine pays steps x group per stage, the incremental
    #: engine group + dirty-set rechecks.
    satisfaction_checks: int = 0
    #: adjacency entries materialized or mutated while preparing each
    #: step's restricted conflict graph (entry plus neighbor-set size, so
    #: the number is comparable across engines).
    adjacency_touches: int = 0

    @property
    def communication_rounds(self) -> int:
        """Total synchronous rounds of the simulated distributed run."""
        return self.mis_rounds + self.steps + self.phase2_rounds


@dataclass
class TwoPhaseResult:
    """Everything produced by one run of the framework."""

    solution: Solution
    dual: DualState
    events: List[RaiseEvent]
    stack: List[List[DemandInstance]]
    slackness: float
    layout: InstanceLayout
    counters: PhaseCounters
    thresholds: List[float]

    @property
    def profit(self) -> float:
        """``p(S)``."""
        return self.solution.profit

    @property
    def certified_upper_bound(self) -> float:
        """``val(alpha, beta) / lambda >= p(Opt)`` by weak duality."""
        return self.dual.scaled_value(self.slackness)

    @property
    def certified_ratio(self) -> float:
        """Per-run certified approximation factor (``>= Opt/p(S)``)."""
        if self.profit <= 0:
            return float("inf")
        return self.certified_upper_bound / self.profit

    @property
    def raised_delta(self) -> int:
        """Largest critical set actually used by a raise."""
        if not self.events:
            return 0
        return max(len(ev.critical_edges) for ev in self.events)


FirstPhaseArtifacts = Tuple[
    DualState, List[List[DemandInstance]], List[RaiseEvent], PhaseCounters
]


def _stall_error(epoch: int, stage_no: int, n_members: int) -> RuntimeError:
    """A progress-guard failure: the MIS oracle stopped satisfying members."""
    return RuntimeError(
        f"first phase made no progress in epoch {epoch}, stage {stage_no}: "
        f"exceeded {n_members} steps for a group of {n_members} members "
        "(each step must tau-satisfy at least one instance; the MIS oracle "
        "is returning empty or non-raising sets)"
    )


def _group_members(
    instances: Sequence[DemandInstance], layout: InstanceLayout
) -> Dict[int, List[DemandInstance]]:
    groups: Dict[int, List[DemandInstance]] = {}
    for d in instances:
        groups.setdefault(layout.group_of[d.instance_id], []).append(d)
    return groups


def _run_first_phase_reference(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    conflict_adj: ConflictAdjacency,
) -> FirstPhaseArtifacts:
    """The literal Figure 7 loop: full rescans, per-step ``restrict()``."""
    dual = DualState(use_height_rule=raise_rule.use_height_rule)
    by_id = {d.instance_id: d for d in instances}
    groups = _group_members(instances, layout)
    events: List[RaiseEvent] = []
    stack: List[List[DemandInstance]] = []
    counters = PhaseCounters()
    order = 0
    for epoch in range(1, layout.n_epochs + 1):
        members = groups.get(epoch, [])
        counters.epochs += 1
        if not members:
            continue
        for stage_no, tau in enumerate(thresholds, start=1):
            counters.stages += 1
            step = 0
            while True:
                counters.satisfaction_checks += len(members)
                unsatisfied = [d for d in members if not dual.is_satisfied(d, tau)]
                if not unsatisfied:
                    break
                step += 1
                if step > len(members):  # each step must satisfy >= 1 member
                    raise _stall_error(epoch, stage_no, len(members))
                unsatisfied_ids = [d.instance_id for d in unsatisfied]
                for i in unsatisfied_ids:
                    counters.adjacency_touches += 1 + len(conflict_adj[i])
                mis_ids, rounds = mis_oracle(
                    unsatisfied,
                    restrict(conflict_adj, unsatisfied_ids),
                    (epoch, stage_no, step),
                )
                counters.mis_rounds += rounds
                chosen = [by_id[i] for i in sorted(mis_ids)]
                for d in chosen:
                    delta = raise_rule.apply(dual, d, layout.pi[d.instance_id])
                    events.append(
                        RaiseEvent(
                            order=order,
                            instance=d,
                            delta=delta,
                            critical_edges=layout.pi[d.instance_id],
                            step_tuple=(epoch, stage_no, step),
                        )
                    )
                    order += 1
                    counters.raises += 1
                stack.append(chosen)
                counters.steps += 1
            counters.max_steps_per_stage = max(counters.max_steps_per_stage, step)
    return dual, stack, events, counters


def _run_first_phase_incremental(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    conflict_adj: ConflictAdjacency,
) -> FirstPhaseArtifacts:
    """Dirty-set engine: same semantics, incremental satisfaction state.

    Correctness rests on two facts.  (1) The LHS of an instance's dual
    constraint changes only when some neighbor's raise touches it: a
    raise on ``d`` moves ``alpha`` only for demand ``a_d`` and ``beta``
    only on ``pi(d)``, so the instances whose LHS moved (the *dirty
    set*) are exactly what :class:`InstanceIndex` returns.  (2) Raises
    only *increase* LHS values, so within one (epoch, stage) a satisfied
    instance stays satisfied -- only dirty instances can change status.

    Together these let the engine cache each member's LHS (recomputed
    only when dirty) so the ``tau``-satisfaction test is a cached float
    comparison, and maintain the per-stage *unsatisfied* set plus an
    active-set adjacency view that shrinks in place as instances
    satisfy, replacing the reference engine's per-step full rescan and
    ``restrict()`` rebuild.
    """
    dual = DualState(use_height_rule=raise_rule.use_height_rule)
    by_id = {d.instance_id: d for d in instances}
    index = build_instance_index(instances)
    groups = _group_members(instances, layout)
    events: List[RaiseEvent] = []
    stack: List[List[DemandInstance]] = []
    counters = PhaseCounters()
    order = 0
    for epoch in range(1, layout.n_epochs + 1):
        members = groups.get(epoch, [])
        counters.epochs += 1
        if not members:
            continue
        # LHS cache, one full evaluation per member per epoch; afterwards
        # entries are recomputed only when their instance is dirty.
        lhs_of: Dict[InstanceId, float] = {}
        for d in members:
            counters.satisfaction_checks += 1
            lhs_of[d.instance_id] = dual.lhs(d)
        for stage_no, tau in enumerate(thresholds, start=1):
            counters.stages += 1
            # Stage boundary: tau rose; re-derive the unsatisfied set from
            # the cache (same predicate as DualState.is_satisfied).
            unsat = {
                d.instance_id
                for d in members
                if not DualState.lhs_satisfies(lhs_of[d.instance_id], d.profit, tau)
            }
            if not unsat:
                continue
            # Active-set view of the conflict graph, built once per stage
            # and shrunk in place as instances satisfy.
            active_adj: ConflictAdjacency = {}
            for i in unsat:
                active_adj[i] = conflict_adj[i] & unsat
                counters.adjacency_touches += 1 + len(conflict_adj[i])
            step = 0
            while unsat:
                step += 1
                if step > len(members):  # each step must satisfy >= 1 member
                    raise _stall_error(epoch, stage_no, len(members))
                candidates = [by_id[i] for i in sorted(unsat)]
                mis_ids, rounds = mis_oracle(
                    candidates, active_adj, (epoch, stage_no, step)
                )
                counters.mis_rounds += rounds
                chosen = [by_id[i] for i in sorted(mis_ids)]
                dirty: set = set()
                for d in chosen:
                    delta = raise_rule.apply(dual, d, layout.pi[d.instance_id])
                    events.append(
                        RaiseEvent(
                            order=order,
                            instance=d,
                            delta=delta,
                            critical_edges=layout.pi[d.instance_id],
                            step_tuple=(epoch, stage_no, step),
                        )
                    )
                    order += 1
                    counters.raises += 1
                    dirty.add(d.instance_id)
                    dirty |= index.affected_by(d.demand_id, layout.pi[d.instance_id])
                stack.append(chosen)
                counters.steps += 1
                # Refresh the cache for dirty group members and retire the
                # ones that became tau-satisfied.
                newly_satisfied = []
                for i in sorted(dirty & lhs_of.keys()):
                    d = by_id[i]
                    counters.satisfaction_checks += 1
                    lhs = dual.lhs(d)
                    lhs_of[i] = lhs
                    if i in unsat and DualState.lhs_satisfies(lhs, d.profit, tau):
                        newly_satisfied.append(i)
                for i in newly_satisfied:
                    unsat.discard(i)
                    nbrs = active_adj.pop(i)
                    counters.adjacency_touches += 1 + len(nbrs)
                    for nb in nbrs:
                        if nb in active_adj:
                            active_adj[nb].discard(i)
            counters.max_steps_per_stage = max(counters.max_steps_per_stage, step)
    return dual, stack, events, counters


_ENGINE_IMPLS = {
    "reference": _run_first_phase_reference,
    "incremental": _run_first_phase_incremental,
}


def run_first_phase(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    conflict_adj: Optional[ConflictAdjacency] = None,
    engine: str = "reference",
) -> FirstPhaseArtifacts:
    """Run the first phase (Figure 7) and return its artifacts.

    ``engine`` selects the implementation (see the module docstring);
    both produce identical artifacts for the bundled MIS oracles.
    """
    if not thresholds:
        raise ValueError("at least one stage threshold is required")
    try:
        impl = _ENGINE_IMPLS[engine]
    except KeyError:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if conflict_adj is None:
        conflict_adj = build_conflict_graph(instances)
    return impl(instances, layout, raise_rule, thresholds, mis_oracle, conflict_adj)


def run_second_phase(stack: Sequence[Sequence[DemandInstance]]) -> Solution:
    """Run the second phase: pop in reverse, admit greedily if feasible."""
    ledger = CapacityLedger()
    selected: List[DemandInstance] = []
    for batch in reversed(stack):
        for d in sorted(batch, key=lambda x: x.instance_id):
            if ledger.fits(d):
                ledger.add(d)
                selected.append(d)
    return Solution.from_instances(selected)


def run_two_phase(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis: str = "luby",
    seed: int = 0,
    engine: str = "reference",
) -> TwoPhaseResult:
    """Run both phases and assemble a :class:`TwoPhaseResult`.

    ``mis`` selects the oracle (``'luby'``, ``'hash'`` or ``'greedy'``);
    ``seed`` makes randomized runs reproducible; ``engine`` selects the
    first-phase implementation (``'reference'`` or ``'incremental'``,
    equivalent by construction -- see the module docstring).
    """
    oracle = make_mis_oracle(mis, seed)
    dual, stack, events, counters = run_first_phase(
        instances, layout, raise_rule, thresholds, oracle, engine=engine
    )
    solution = run_second_phase(stack)
    counters.phase2_rounds = len(stack)
    return TwoPhaseResult(
        solution=solution,
        dual=dual,
        events=events,
        stack=stack,
        slackness=thresholds[-1],
        layout=layout,
        counters=counters,
        thresholds=list(thresholds),
    )
