"""The two-phase primal-dual framework (Section 3.2, Figure 7).

The engine is the common core of every algorithm in the paper:

* **First phase** -- iterate over *epochs* (one per layered-decomposition
  group), *stages* (a sequence of satisfaction thresholds ``tau``), and
  *steps*: in each step, find an MIS of the still-``tau``-unsatisfied
  instances of the current group, raise the dual variables of every MIS
  member simultaneously (leaving their constraints tight), and push the
  MIS onto a stack.
* **Second phase** -- pop the stack in reverse and greedily admit
  instances that keep the solution feasible.

Algorithms differ only in (a) the layout (group + critical edges per
instance, i.e. the layered decomposition), (b) the threshold schedule
(the paper's multi-stage ``1 - xi^j`` thresholds, or Panconesi-Sozio's
single ``1/(5+eps)`` threshold), (c) the raise rule (unit or heights),
and (d) the MIS oracle.  The approximation guarantees of Lemma 3.1 and
Lemma 6.1 follow from the interference property of the layout.

Engines
-------

This module is the stable facade over the engine implementations in
:mod:`repro.core.engines`; four interchangeable first-phase engines sit
behind the ``engine=`` switch of :func:`run_two_phase` /
:func:`run_first_phase`:

* ``engine="reference"`` (default) -- the literal Figure 7 loop: every
  step rescans all group members for ``tau``-satisfaction and rebuilds
  the restricted conflict graph from scratch, ``O(steps x group^2)``
  work per stage.  It is the executable specification
  (:mod:`repro.core.engines.reference`).
* ``engine="incremental"`` -- semantically identical, but maintains a
  per-(epoch, stage) *unsatisfied* set updated via dirty-sets: a dual
  raise on instance ``d`` moves ``alpha`` only for demand ``a_d`` and
  ``beta`` only on ``pi(d)``, so the instances whose satisfaction can
  flip are found through the prebuilt edge->instance index
  (:func:`repro.distributed.conflict.build_instance_index`).  Because
  raises only increase constraint LHS values, satisfaction is monotone
  within a stage and the set never needs a full rescan until the next
  threshold.  The per-step ``restrict()`` rebuild is replaced by an
  active-set adjacency view that shrinks as instances satisfy
  (:mod:`repro.core.engines.incremental`).
* ``engine="parallel"`` -- the plan -> execute -> merge engine
  (:mod:`repro.core.engines.parallel`): an
  :class:`~repro.core.plan.EpochPlan` partitions the epochs into
  *waves* of epochs that share no path edge and no demand, each wave
  runs concurrently over per-epoch incremental state, and the per-epoch
  artifacts are merged back in epoch order.  Two further knobs shape
  *how* waves execute: ``backend=`` picks the execution substrate
  (``"thread"`` pool (default), ``"process"`` pool with pickled job
  slices for real CPU parallelism, or ``"serial"`` for debugging; see
  :mod:`repro.core.engines.backends`) and ``workers=`` sizes the pool.
  ``plan_granularity="component"`` (opt-in, relaxed) additionally
  splits each epoch's disconnected conflict components into separate
  jobs; solutions stay feasible and certified but the schedule counters
  are no longer bit-identical to the serial engines.
  ``plan_granularity="auto"`` applies that split only when the plan's
  component structure predicts a win
  (:meth:`repro.core.plan.EpochPlan.recommend_split`), staying strict
  -- bit-identical included -- otherwise.
* ``engine="vectorized"`` -- the array-native columnar kernel
  (:mod:`repro.core.engines.columnar`): the whole phase is re-encoded
  once into numpy struct-of-arrays blocks (CSR path/critical-edge
  columns, conflict *buckets* instead of pairwise adjacency) and every
  per-step operation -- tau-satisfaction, MIS, dual raises, dirty-set
  recomputation -- runs as vectorized kernels over persistent float64
  dual arrays, committing back to dict form at each epoch boundary.
  Serial by default; ``workers=`` / ``backend=`` route it through the
  parallel executor with the columnar kernel executing each epoch job
  (``kernel="vectorized"``).  Bit-identical to ``incremental`` for the
  bundled raise rules and MIS oracles; custom rules/oracles fall back
  to an exact shadow mode.

All engines -- and all parallel backends -- produce bit-identical
artifacts (solutions, raise events, stacks, schedule counters) for the
bundled MIS oracles under the default epoch granularity; the golden
suites in ``tests/test_engine_equivalence.py`` and
``tests/test_backends.py`` enforce this.  :class:`PhaseCounters`
exposes ``satisfaction_checks`` and ``adjacency_touches`` so the
asymptotic win is measurable (see
``benchmarks/bench_e16_engine_scaling.py`` and
``benchmarks/bench_e17_parallel_epochs.py``;
``benchmarks/bench_e21_vectorized_kernel.py`` times the columnar
kernel against the incremental engine).
"""
from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent, RaiseRule
from repro.core.engines import (
    ADMISSION_ENGINES,
    BACKENDS,
    FirstPhaseArtifacts,
    InstanceLayout,
    PhaseCounters,
    run_first_phase_incremental,
    run_first_phase_parallel,
    run_first_phase_reference,
    run_first_phase_vectorized,
)
from repro.core.engines import validate_backend as _validate_backend_name
from repro.core.engines.admission import (
    run_second_phase as _run_second_phase_engine,
)
from repro.core.engines.admission import validate_admission_engine
from repro.core.engines.journal import active_journal
from repro.core.plan import GRANULARITIES
from repro.core.plan import validate_granularity as _validate_granularity_name
from repro.core.result import TwoPhaseResult
from repro.core.solution import Solution
from repro.distributed.conflict import ConflictAdjacency, build_conflict_graph
from repro.distributed.mis import MISOracle, make_mis_oracle

#: The interchangeable first-phase engines (see the module docstring).
ENGINES = ("reference", "incremental", "parallel", "vectorized")

#: The interchangeable second-phase (admission) engines -- see
#: :mod:`repro.core.engines.admission`.
PHASE2_ENGINES = ADMISSION_ENGINES


def validate_engine(engine: str) -> str:
    """Validate a first-phase engine name (the single source of truth).

    Everything that accepts ``engine=`` -- the ``solve_*`` entry points
    via :func:`repro.algorithms.base.validate_engine`, and
    :func:`run_first_phase` itself -- funnels through this check, so the
    engine registry and its error message live in exactly one place.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    return engine


def validate_phase2_engine(engine: str) -> str:
    """Validate a second-phase (admission) engine name.

    Delegates to
    :func:`repro.core.engines.admission.validate_admission_engine`, the
    single source of truth for the admission-engine registry.
    """
    return validate_admission_engine(engine)


def validate_backend(backend: Optional[str]) -> Optional[str]:
    """Validate a parallel-engine backend name (``None`` = default).

    Delegates to :func:`repro.core.engines.backends.validate_backend`,
    the single source of truth for the backend registry; ``None`` passes
    through (it resolves to the ``REPRO_BACKEND`` environment variable
    or ``"thread"`` inside the parallel engine).
    """
    if backend is None:
        return None
    return _validate_backend_name(backend)


def validate_plan_granularity(plan_granularity: Optional[str]) -> Optional[str]:
    """Validate a planner granularity name (``None`` = ``"epoch"``).

    Delegates to :func:`repro.core.plan.validate_granularity`, the
    single source of truth for the granularity registry.
    """
    if plan_granularity is None:
        return None
    return _validate_granularity_name(plan_granularity)


def geometric_thresholds(xi: float, epsilon: float) -> List[float]:
    """The paper's stage thresholds ``1 - xi^j`` for ``j = 1..b``.

    ``b`` is the smallest integer with ``xi^b <= epsilon``, so after the
    last stage every instance of the epoch's group is ``(1-eps)``-satisfied.
    """
    if not 0 < xi < 1:
        raise ValueError(f"xi must lie in (0, 1), got {xi}")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    b = max(1, math.ceil(math.log(epsilon) / math.log(xi)))
    return [1.0 - xi**j for j in range(1, b + 1)]


def unit_xi(delta: int) -> float:
    """``xi = 2 Delta' / (2 Delta' + 1)`` with ``Delta' = Delta + 1``.

    Gives ``14/15`` for trees (``Delta = 6``) and ``8/9`` for lines
    (``Delta = 3``), the constants used in Sections 5 and 7.  This is
    the largest ``xi`` for which the kill-factor of Claim 5.2 is 2.
    """
    dprime = delta + 1
    return (2 * dprime) / (2 * dprime + 1)


def narrow_xi(delta: int, hmin: float) -> float:
    """``xi = c / (c + hmin)`` with ``c = 2 (1 + 2 Delta^2)`` (Section 6).

    Chosen so the kill-chain argument of Lemma 5.1 keeps a profit-doubling
    factor of at least 2 under the height raise rule, yielding
    ``O((1/hmin) log(1/eps))`` stages per epoch.
    """
    if not 0 < hmin <= 0.5:
        raise ValueError(f"hmin must lie in (0, 1/2], got {hmin}")
    c = 2.0 * (1 + 2 * delta * delta)
    return c / (c + hmin)


def run_first_phase(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    conflict_adj: Optional[ConflictAdjacency] = None,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
) -> FirstPhaseArtifacts:
    """Run the first phase (Figure 7) and return its artifacts.

    ``engine`` selects the implementation (see the module docstring);
    all engines produce identical artifacts for the bundled MIS oracles.
    ``workers`` sizes the parallel engine's pool (default: the usable
    CPUs, capped), ``backend`` its execution substrate ('thread',
    'process' or 'serial'), and ``plan_granularity`` the planner mode
    ('epoch' strict, 'component' relaxed, 'auto' heuristic); all three
    are rejected for the serial engines.
    """
    if not thresholds:
        raise ValueError("at least one stage threshold is required")
    validate_engine(engine)
    if engine == "parallel":
        # The plan slices per-epoch adjacency itself; no global conflict
        # graph (with its never-consulted cross-epoch pairs) is needed.
        return run_first_phase_parallel(
            instances, layout, raise_rule, thresholds, mis_oracle,
            conflict_adj=conflict_adj, workers=workers, backend=backend,
            plan_granularity=plan_granularity,
        )
    if engine == "vectorized":
        # The columnar kernel's bucket structure replaces both the
        # global conflict graph and (on the serial fast path) the epoch
        # plan, so neither is built here.
        return run_first_phase_vectorized(
            instances, layout, raise_rule, thresholds, mis_oracle,
            conflict_adj=conflict_adj, workers=workers, backend=backend,
            plan_granularity=plan_granularity,
        )
    for knob, value in (
        ("workers", workers),
        ("backend", backend),
        ("plan_granularity", plan_granularity),
    ):
        if value is not None:
            raise ValueError(
                f"{knob}= applies only to engine='parallel' or "
                f"'vectorized', not {engine!r}"
            )
    if conflict_adj is None and not (
        engine == "incremental" and active_journal() is not None
    ):
        # The journaled incremental runner slices per-epoch adjacency
        # from an EpochPlan, so the global conflict graph (with its
        # never-consulted cross-epoch pairs) would be wasted work there.
        conflict_adj = build_conflict_graph(instances)
    impl = {
        "reference": run_first_phase_reference,
        "incremental": run_first_phase_incremental,
    }[engine]
    return impl(instances, layout, raise_rule, thresholds, mis_oracle, conflict_adj)


def run_second_phase(
    stack: Sequence[Sequence[DemandInstance]],
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    dual: Optional[DualState] = None,
    counters: Optional[PhaseCounters] = None,
) -> Solution:
    """Run the second phase: pop in reverse, admit greedily if feasible.

    Stable facade over :mod:`repro.core.engines.admission`.  ``engine``
    selects the pop implementation (``'reference'``, ``'sliced'``,
    ``'vectorized'`` -- bit-identical by construction); ``workers`` /
    ``backend`` configure the sliced engine's executor; ``dual`` and
    ``counters`` feed the journaled replay path and the admission work
    account (both optional -- the bare one-argument call is unchanged).
    """
    return _run_second_phase_engine(
        stack, engine=engine, workers=workers, backend=backend,
        dual=dual, counters=counters,
    )


def run_two_phase(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis: str = "luby",
    seed: int = 0,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
    phase2_engine: str = "reference",
) -> TwoPhaseResult:
    """Run both phases and assemble a :class:`TwoPhaseResult`.

    ``mis`` selects the oracle (``'luby'``, ``'hash'`` or ``'greedy'``);
    ``seed`` makes randomized runs reproducible; ``engine`` selects the
    first-phase implementation (``'reference'``, ``'incremental'``,
    ``'parallel'`` or ``'vectorized'``, equivalent by construction --
    see the module docstring); ``workers``, ``backend`` and
    ``plan_granularity`` configure the pooled engines' (parallel,
    vectorized) pool, execution substrate and planner mode.
    ``phase2_engine`` selects the admission implementation
    (``'reference'``, ``'sliced'``, ``'vectorized'`` -- also equivalent
    by construction); ``workers``/``backend`` additionally size the
    sliced pop's executor, and are legal with serial first-phase engines
    when (and only when) the sliced pop is the consumer.
    """
    validate_phase2_engine(phase2_engine)
    oracle = make_mis_oracle(mis, seed)
    pooled = engine in ("parallel", "vectorized")
    sliced_pop = phase2_engine == "sliced"
    dual, stack, events, counters = run_first_phase(
        instances, layout, raise_rule, thresholds, oracle,
        engine=engine,
        workers=workers if (pooled or not sliced_pop) else None,
        backend=backend if (pooled or not sliced_pop) else None,
        plan_granularity=plan_granularity,
    )
    solution = run_second_phase(
        stack,
        engine=phase2_engine,
        workers=workers if sliced_pop else None,
        backend=backend if sliced_pop else None,
        dual=dual,
        counters=counters,
    )
    return TwoPhaseResult(
        solution=solution,
        dual=dual,
        events=events,
        stack=stack,
        slackness=thresholds[-1],
        layout=layout,
        counters=counters,
        thresholds=list(thresholds),
    )
