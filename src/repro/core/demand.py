"""Demands, window demands, and demand instances.

The paper's input objects (Section 2 and Section 7):

* :class:`Demand` -- a point-to-point demand ``a = <u, v>`` with a profit
  ``p(a)`` and a height ``h(a) <= 1`` (``h = 1`` is the unit-height case).
* :class:`WindowDemand` -- a line-network job with a window
  ``[release, deadline]`` and a processing time ``rho``; it may execute on
  any segment of ``rho`` consecutive timeslots inside the window.
* :class:`DemandInstance` -- one concrete scheduling possibility of a
  demand: a (network, path) pair, optionally pinned to a start slot for
  window demands.  The set of all instances is the paper's ``D``.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.core.types import DemandId, EdgeKey, InstanceId, NetworkId, Vertex


def _check_profit_height(profit: float, height: float) -> None:
    if not profit > 0:
        raise ValueError(f"profit must be positive, got {profit}")
    if not 0 < height <= 1:
        raise ValueError(f"height must lie in (0, 1], got {height}")


@dataclass(frozen=True)
class Demand:
    """A point-to-point demand ``<u, v>`` with profit and height.

    ``height == 1`` corresponds to the paper's unit-height case, in which
    selected demands on the same network must use edge-disjoint paths.
    """

    demand_id: DemandId
    u: Vertex
    v: Vertex
    profit: float
    height: float = 1.0

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"demand endpoints must differ, got <{self.u}, {self.v}>")
        _check_profit_height(self.profit, self.height)

    @property
    def is_wide(self) -> bool:
        """Wide means ``h > 1/2`` (Section 6); two overlapping wide
        instances can never be scheduled together."""
        return self.height > 0.5

    @property
    def is_narrow(self) -> bool:
        """Narrow means ``h <= 1/2`` (Section 6)."""
        return not self.is_wide


@dataclass(frozen=True)
class WindowDemand:
    """A line-network demand with a release/deadline window (Section 7).

    The job needs ``processing`` consecutive timeslots, all within
    ``[release, deadline]`` (slot indices, inclusive).  Each feasible
    placement on each accessible resource yields one demand instance.
    """

    demand_id: DemandId
    release: int
    deadline: int
    processing: int
    profit: float
    height: float = 1.0

    def __post_init__(self) -> None:
        if self.processing < 1:
            raise ValueError("processing time must be at least one slot")
        if self.release < 0:
            raise ValueError("release slot must be non-negative")
        if self.deadline - self.release + 1 < self.processing:
            raise ValueError(
                f"window [{self.release}, {self.deadline}] is shorter than "
                f"processing time {self.processing}"
            )
        _check_profit_height(self.profit, self.height)

    @property
    def start_slots(self) -> range:
        """All feasible start slots of the execution segment."""
        return range(self.release, self.deadline - self.processing + 2)

    @property
    def is_wide(self) -> bool:
        """Wide means ``h > 1/2`` (Section 6)."""
        return self.height > 0.5

    @property
    def is_narrow(self) -> bool:
        """Narrow means ``h <= 1/2`` (Section 6)."""
        return not self.is_wide


@dataclass(frozen=True)
class DemandInstance:
    """One scheduling possibility of a demand on one network.

    ``path_edges`` is ``path(d)`` as a frozenset of canonical edge keys;
    ``path_vertex_seq`` is the same path as an ordered vertex tuple (used
    by the decomposition machinery for wings and bending points).
    """

    instance_id: InstanceId
    demand_id: DemandId
    network_id: NetworkId
    u: Vertex
    v: Vertex
    profit: float
    height: float
    path_vertex_seq: Tuple[Vertex, ...]
    path_edges: FrozenSet[EdgeKey] = field(repr=False)
    #: Start slot for window-demand placements (None for point-to-point).
    start_slot: Tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if len(self.path_vertex_seq) < 2:
            raise ValueError("a demand instance must span at least one edge")
        if len(self.path_edges) != len(self.path_vertex_seq) - 1:
            raise ValueError("path_edges inconsistent with path_vertex_seq")

    @property
    def length(self) -> int:
        """Number of edges on ``path(d)`` (for lines: number of timeslots)."""
        return len(self.path_edges)

    @property
    def is_wide(self) -> bool:
        """Wide means ``h > 1/2`` (Section 6)."""
        return self.height > 0.5

    @property
    def is_narrow(self) -> bool:
        """Narrow means ``h <= 1/2`` (Section 6)."""
        return not self.is_wide

    def is_active_on(self, e: EdgeKey) -> bool:
        """The paper's ``d ~ e``: whether ``path(d)`` includes edge *e*."""
        return e in self.path_edges

    def overlaps(self, other: "DemandInstance") -> bool:
        """Whether the two instances share an edge of the same network."""
        if self.network_id != other.network_id:
            return False
        return not self.path_edges.isdisjoint(other.path_edges)

    def conflicts_with(self, other: "DemandInstance") -> bool:
        """The paper's conflict relation: same demand, or overlapping."""
        if self.demand_id == other.demand_id:
            return True
        return self.overlaps(other)
