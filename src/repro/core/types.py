"""Shared type aliases and numeric tolerances.

Every module in the library represents graph vertices as integers and
edges of a particular network as ``EdgeKey`` triples ``(network_id, u, v)``
with ``u < v``, matching the paper's representation of an edge as the
triple ``<u, v, T>`` (Section 2, "Notation").
"""
from __future__ import annotations

from typing import Tuple

#: A vertex of a network.  The paper's vertex set ``V`` is ``{0..n-1}``.
Vertex = int

#: Identifier of a tree-network (the paper's ``T in calT``).
NetworkId = int

#: Identifier of a demand (the paper's ``a in calA``); one per processor.
DemandId = int

#: Identifier of a demand instance (an element of the paper's set ``D``).
InstanceId = int

#: Canonical representation of an edge ``<u, v, T>``: ``(T, min(u,v), max(u,v))``.
EdgeKey = Tuple[NetworkId, Vertex, Vertex]

#: Absolute tolerance used in all dual-constraint and capacity comparisons.
#: Dual raising performs float arithmetic; a raised constraint is "tight"
#: only up to round-off, so every satisfaction test allows this slack.
EPS = 1e-9


def edge_key(network_id: NetworkId, u: Vertex, v: Vertex) -> EdgeKey:
    """Return the canonical key of the edge ``<u, v, T>``."""
    if u == v:
        raise ValueError(f"self-loop edge ({u}, {v}) is not allowed")
    if u < v:
        return (network_id, u, v)
    return (network_id, v, u)
