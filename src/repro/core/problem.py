"""Problem model: networks + demands + accessibility -> demand instances.

A :class:`Problem` bundles the paper's input (Section 2): the
tree-networks ``calT``, the demands ``calA`` (one per processor), and the
accessibility map ``Acc(P)``.  Its main job is the paper's reformulation:
expanding demands into the set ``D`` of demand instances, each a concrete
(network, path) possibility.

Window demands (Section 7) expand into one instance per accessible
resource per feasible start slot.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.demand import Demand, DemandInstance, WindowDemand
from repro.core.types import DemandId, EdgeKey, NetworkId
from repro.trees.tree import TreeNetwork

AnyDemand = Union[Demand, WindowDemand]


class ProblemError(ValueError):
    """Raised when the problem input is inconsistent."""


@dataclass
class Problem:
    """The throughput maximization problem input.

    Parameters
    ----------
    networks:
        The tree-networks, keyed by network id.
    demands:
        The demands, one per processor.  Demand ids must be unique.
    access:
        ``Acc``: demand id -> network ids its processor can access.
        If omitted, every processor can access every network.
    """

    networks: Dict[NetworkId, TreeNetwork]
    demands: List[AnyDemand]
    access: Dict[DemandId, Tuple[NetworkId, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.networks:
            raise ProblemError("at least one network is required")
        if not self.demands:
            raise ProblemError("at least one demand is required")
        ids = [a.demand_id for a in self.demands]
        if len(set(ids)) != len(ids):
            raise ProblemError("demand ids must be unique")
        for nid, net in self.networks.items():
            if net.network_id != nid:
                raise ProblemError(
                    f"network keyed {nid} reports network_id={net.network_id}"
                )
        if not self.access:
            everything = tuple(sorted(self.networks))
            self.access = {a.demand_id: everything for a in self.demands}
        for a in self.demands:
            nets = self.access.get(a.demand_id)
            if not nets:
                raise ProblemError(f"demand {a.demand_id} can access no network")
            for nid in nets:
                if nid not in self.networks:
                    raise ProblemError(
                        f"demand {a.demand_id} lists unknown network {nid}"
                    )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """``n``: the largest vertex count over the networks."""
        return max(net.n_vertices for net in self.networks.values())

    @property
    def pmax(self) -> float:
        """Maximum demand profit."""
        return max(a.profit for a in self.demands)

    @property
    def pmin(self) -> float:
        """Minimum demand profit."""
        return min(a.profit for a in self.demands)

    @property
    def hmin(self) -> float:
        """Minimum demand height."""
        return min(a.height for a in self.demands)

    @property
    def is_unit_height(self) -> bool:
        """Whether every demand has height exactly 1."""
        return all(a.height == 1.0 for a in self.demands)

    def demand_by_id(self, demand_id: DemandId) -> AnyDemand:
        """Look up a demand by id."""
        return self._demand_index[demand_id]

    @cached_property
    def _demand_index(self) -> Dict[DemandId, AnyDemand]:
        return {a.demand_id: a for a in self.demands}

    # ------------------------------------------------------------------
    # Instance expansion (the paper's reformulation, Section 2)
    # ------------------------------------------------------------------
    @cached_property
    def instances(self) -> Tuple[DemandInstance, ...]:
        """All demand instances ``D``, in a deterministic order."""
        out: List[DemandInstance] = []
        next_id = 0
        for a in self.demands:
            for nid in sorted(self.access[a.demand_id]):
                net = self.networks[nid]
                if isinstance(a, WindowDemand):
                    next_id = self._expand_window(a, net, out, next_id)
                else:
                    next_id = self._expand_point_to_point(a, net, out, next_id)
        if not out:
            raise ProblemError("no demand produced any instance")
        return tuple(out)

    def _expand_point_to_point(
        self, a: Demand, net: TreeNetwork, out: List[DemandInstance], next_id: int
    ) -> int:
        if not (net.has_vertex(a.u) and net.has_vertex(a.v)):
            raise ProblemError(
                f"demand {a.demand_id} endpoints <{a.u}, {a.v}> missing from "
                f"network {net.network_id}"
            )
        verts = net.path_vertices(a.u, a.v)
        edges = frozenset(net.path_edges(a.u, a.v))
        out.append(
            DemandInstance(
                instance_id=next_id,
                demand_id=a.demand_id,
                network_id=net.network_id,
                u=a.u,
                v=a.v,
                profit=a.profit,
                height=a.height,
                path_vertex_seq=verts,
                path_edges=edges,
            )
        )
        return next_id + 1

    def _expand_window(
        self, a: WindowDemand, net: TreeNetwork, out: List[DemandInstance], next_id: int
    ) -> int:
        if not net.is_path_graph():
            raise ProblemError(
                f"window demand {a.demand_id} requires a line-network; "
                f"network {net.network_id} is not a path"
            )
        n_slots = net.n_vertices - 1
        for s in a.start_slots:
            end_vertex = s + a.processing
            if end_vertex > n_slots:
                continue  # placement falls off the timeline
            verts = tuple(range(s, end_vertex + 1))
            edges = frozenset(net.path_edges(s, end_vertex))
            out.append(
                DemandInstance(
                    instance_id=next_id,
                    demand_id=a.demand_id,
                    network_id=net.network_id,
                    u=s,
                    v=end_vertex,
                    profit=a.profit,
                    height=a.height,
                    path_vertex_seq=verts,
                    path_edges=edges,
                    start_slot=(s,),
                )
            )
            next_id += 1
        return next_id

    @cached_property
    def instances_by_network(self) -> Dict[NetworkId, Tuple[DemandInstance, ...]]:
        """``D(T)`` for each network ``T``."""
        buckets: Dict[NetworkId, List[DemandInstance]] = {
            nid: [] for nid in self.networks
        }
        for d in self.instances:
            buckets[d.network_id].append(d)
        return {nid: tuple(ds) for nid, ds in buckets.items()}

    @cached_property
    def all_edges(self) -> Tuple[EdgeKey, ...]:
        """``calE``: every edge of every network."""
        out: List[EdgeKey] = []
        for nid in sorted(self.networks):
            out.extend(self.networks[nid].edges())
        return tuple(out)

    # ------------------------------------------------------------------
    # Communication structure (Section 2)
    # ------------------------------------------------------------------
    @cached_property
    def communication_edges(self) -> Tuple[Tuple[DemandId, DemandId], ...]:
        """Pairs of processors allowed to communicate.

        Two processors may exchange messages iff they share an accessible
        resource: ``Acc(P1) & Acc(P2) != {}``.
        """
        by_network: Dict[NetworkId, List[DemandId]] = {}
        for a in self.demands:
            for nid in self.access[a.demand_id]:
                by_network.setdefault(nid, []).append(a.demand_id)
        pairs = set()
        for members in by_network.values():
            members = sorted(members)
            for i, p in enumerate(members):
                for q in members[i + 1 :]:
                    pairs.add((p, q))
        return tuple(sorted(pairs))

    def split_by_width(self) -> Tuple["Problem", "Problem"]:
        """Split into (wide, narrow) subproblems (Section 6).

        Either side may be empty; callers must check ``demands`` before use.
        Raises :class:`ProblemError` if a side would be empty -- use
        :meth:`has_wide` / :meth:`has_narrow` to guard.
        """
        wide = [a for a in self.demands if a.is_wide]
        narrow = [a for a in self.demands if a.is_narrow]
        if not wide or not narrow:
            raise ProblemError("split_by_width needs both wide and narrow demands")
        return (
            Problem(self.networks, wide, {a.demand_id: self.access[a.demand_id] for a in wide}),
            Problem(self.networks, narrow, {a.demand_id: self.access[a.demand_id] for a in narrow}),
        )

    @property
    def has_wide(self) -> bool:
        """Whether any demand is wide (``h > 1/2``)."""
        return any(a.is_wide for a in self.demands)

    @property
    def has_narrow(self) -> bool:
        """Whether any demand is narrow (``h <= 1/2``)."""
        return any(a.is_narrow for a in self.demands)

    def restricted_to(self, demands: Sequence[AnyDemand]) -> "Problem":
        """A sub-problem over the given subset of this problem's demands."""
        return Problem(
            self.networks,
            list(demands),
            {a.demand_id: self.access[a.demand_id] for a in demands},
        )
