"""Core problem model, LP/dual machinery and the two-phase framework."""
from repro.core.demand import Demand, DemandInstance, WindowDemand
from repro.core.dual import DualState, HeightRaise, RaiseEvent, UnitRaise
from repro.core.framework import (
    BACKENDS,
    ENGINES,
    GRANULARITIES,
    InstanceLayout,
    PhaseCounters,
    TwoPhaseResult,
    geometric_thresholds,
    narrow_xi,
    run_first_phase,
    run_second_phase,
    run_two_phase,
    unit_xi,
    validate_backend,
    validate_engine,
    validate_plan_granularity,
)
from repro.core.plan import EpochPlan
from repro.core.problem import Problem, ProblemError
from repro.core.solution import (
    CapacityLedger,
    InfeasibleSolutionError,
    Solution,
    combine_per_network,
)
from repro.core.types import EPS, EdgeKey, edge_key

__all__ = [
    "BACKENDS",
    "CapacityLedger",
    "Demand",
    "DemandInstance",
    "DualState",
    "ENGINES",
    "GRANULARITIES",
    "EPS",
    "EdgeKey",
    "EpochPlan",
    "HeightRaise",
    "InfeasibleSolutionError",
    "InstanceLayout",
    "PhaseCounters",
    "Problem",
    "ProblemError",
    "RaiseEvent",
    "Solution",
    "TwoPhaseResult",
    "UnitRaise",
    "WindowDemand",
    "combine_per_network",
    "edge_key",
    "geometric_thresholds",
    "narrow_xi",
    "run_first_phase",
    "run_second_phase",
    "run_two_phase",
    "unit_xi",
    "validate_backend",
    "validate_engine",
    "validate_plan_granularity",
]
