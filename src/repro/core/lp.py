"""The throughput-maximization LP (Sections 3.1 and 6.1).

Primal::

    max   sum_d p(d) x(d)
    s.t.  sum_{d ~ e} h(d) x(d) <= 1      for every edge e
          sum_{d in Inst(a)} x(d) <= 1    for every demand a
          x >= 0

(``h(d) = 1`` in the unit-height case).  The fractional optimum upper
bounds the integral optimum, so :func:`lp_upper_bound` provides a
scalable yardstick for measuring approximation ratios when exact
branch-and-bound is out of reach.  :func:`check_scaled_dual_feasible`
verifies the weak-duality certificate produced by the framework: once
every instance is ``lambda``-satisfied, ``<alpha, beta> / lambda`` is
dual feasible and its value bounds ``p(Opt)``.
"""
from __future__ import annotations

from typing import Dict, Sequence

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.core.demand import DemandInstance
from repro.core.dual import DualState
from repro.core.problem import Problem
from repro.core.types import EdgeKey


def lp_upper_bound(problem: Problem) -> float:
    """Solve the fractional LP; returns its optimal value.

    Uses scipy's HiGHS solver on a sparse constraint matrix.
    """
    instances = problem.instances
    n = len(instances)
    edge_rows: Dict[EdgeKey, int] = {}
    demand_rows: Dict[int, int] = {}
    for d in instances:
        for e in d.path_edges:
            edge_rows.setdefault(e, len(edge_rows))
    n_edges = len(edge_rows)
    for d in instances:
        demand_rows.setdefault(d.demand_id, n_edges + len(demand_rows))
    n_rows = n_edges + len(demand_rows)
    a_ub = lil_matrix((n_rows, n))
    for j, d in enumerate(instances):
        for e in d.path_edges:
            a_ub[edge_rows[e], j] = d.height
        a_ub[demand_rows[d.demand_id], j] = 1.0
    c = np.array([-d.profit for d in instances])
    res = linprog(
        c,
        A_ub=a_ub.tocsr(),
        b_ub=np.ones(n_rows),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not res.success:  # pragma: no cover - HiGHS is exact on these LPs
        raise RuntimeError(f"LP solve failed: {res.message}")
    return float(-res.fun)


def check_scaled_dual_feasible(
    dual: DualState, instances: Sequence[DemandInstance], slackness: float
) -> None:
    """Assert that ``<alpha, beta> / slackness`` is dual feasible.

    Equivalently, every instance must be ``slackness``-satisfied under
    the (unit or height) dual constraint.  Raises ``AssertionError``
    otherwise.
    """
    for d in instances:
        if not dual.is_satisfied(d, slackness):
            raise AssertionError(
                f"instance {d.instance_id} is not {slackness:.4f}-satisfied: "
                f"LHS={dual.lhs(d):.6g} < {slackness * d.profit:.6g}"
            )
