"""Pluggable execution backends for the parallel first-phase engine.

The parallel engine (:mod:`repro.core.engines.parallel`) turns an
:class:`~repro.core.plan.EpochPlan` wave into a list of sealed
:class:`EpochJob` bundles -- everything one epoch (or one conflict
component of an epoch, under ``plan_granularity="component"``) needs to
run :func:`~repro.core.engines.incremental.run_epoch_incremental` on its
own: the member slice, the member-restricted conflict adjacency and
reverse index, the critical-edge layout, the raise rule and thresholds,
the MIS oracle, and the dual values primed from the master state.  An
:class:`EpochExecutorBackend` decides *where* those jobs run:

* ``thread`` -- a warm, process-wide :class:`ThreadPoolExecutor`.  Zero
  copying, shared memory; on a GIL-bound CPython the concurrency is
  cooperative, so the win comes from the plan's sliced state rather
  than core-parallelism.  The default.
* ``process`` -- a warm, process-wide :class:`ProcessPoolExecutor`.
  Jobs are shrunk to a picklable wire form (:meth:`EpochJob.sliced`
  drops everything outside the member slice) and shipped to worker
  processes, so epoch waves get *real* CPU parallelism.  Requires every
  job ingredient -- members, index, adjacency, raise rule, thresholds
  and the MIS oracle -- to be picklable; the bundled oracles and rules
  all are (``tests/test_picklability.py`` pins this).
* ``serial`` -- run jobs inline on the calling thread, in order.  The
  debugging backend: identical results, trivially steppable.

All three backends are **bit-identical** under the default epoch
granularity: jobs are sealed off from each other, so where they execute
cannot change what they compute, and the engine's merge walks epochs in
ascending order regardless of completion order.

Both pooled backends chunk a wave into at most ``workers`` jobs and
run the first chunk on the calling thread (caller-runs), so a wave
costs at most ``workers - 1`` dispatches.  Pools are kept warm across
solves (pool start-up -- especially process spawn -- is comparable to
a whole small first phase) and are keyed by worker count.

``backend=None`` resolves to the :data:`BACKEND_ENV_VAR` environment
variable when set (CI smoke legs run the whole suite under
``REPRO_BACKEND=process`` this way) and to ``"thread"`` otherwise.
"""
from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import sys
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent, RaiseRule
from repro.core.engines.artifacts import InstanceLayout, PhaseCounters
from repro.core.engines.incremental import run_epoch_incremental
from repro.core.types import DemandId, EdgeKey
from repro.distributed.conflict import ConflictAdjacency, InstanceIndex
from repro.distributed.mis import MISOracle
from repro.obs.metrics import default_registry

#: The interchangeable execution backends of ``engine="parallel"``.
BACKENDS = ("thread", "process", "serial")

#: Environment variable consulted when ``backend=None``; lets CI run an
#: unmodified test suite under a different backend ("smoke settings").
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Default worker-pool size cap: epoch waves are rarely wider than this,
#: and pool ramp-up isn't free.
MAX_DEFAULT_WORKERS = 8


def validate_backend(backend: str) -> str:
    """Validate an execution backend name (the single source of truth).

    Everything that accepts ``backend=`` -- the ``solve_*`` entry points
    via :func:`repro.algorithms.base.validate_backend` and
    :func:`repro.core.framework.run_first_phase` -- funnels through this
    check, so the backend registry and its error message live in exactly
    one place.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    return backend


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve ``backend=None`` (env override, then ``"thread"``)."""
    if backend is None:
        env = os.environ.get(BACKEND_ENV_VAR)
        if not env:
            return "thread"
        if env not in BACKENDS:
            # Name the env var: the caller passed backend=None, so a bare
            # "unknown backend" would point them at the wrong place.
            raise ValueError(
                f"unknown backend {env!r} from ${BACKEND_ENV_VAR}; "
                f"choose from {BACKENDS}"
            )
        return env
    return validate_backend(backend)


def usable_cpu_count() -> int:
    """CPUs this *process* may actually use.

    ``os.cpu_count()`` reports the machine, not the process: under CPU
    affinity masks (taskset, cgroup cpusets, containerized CI) the
    usable count is lower, and sizing a pool past it only adds context
    switching.  Resolution order: ``os.process_cpu_count`` (3.13+,
    affinity-aware), ``os.sched_getaffinity`` (Linux), ``os.cpu_count``.
    """
    probe = getattr(os, "process_cpu_count", None)
    n = probe() if probe is not None else None
    if n is None:
        affinity = getattr(os, "sched_getaffinity", None)
        if affinity is not None:
            try:
                n = len(affinity(0))
            except OSError:
                n = None
    if n is None:
        n = os.cpu_count()
    return max(1, n or 1)


def default_workers() -> int:
    """The ``workers=None`` resolution used by the pooled backends."""
    return min(MAX_DEFAULT_WORKERS, usable_cpu_count())


@dataclass
class EpochJob:
    """One sealed unit of first-phase work: an epoch, or one conflict
    component of an epoch under ``plan_granularity="component"``.

    Carries everything :func:`run_epoch_job` needs, so a job can execute
    on any backend -- including in another process -- without reaching
    back into the planner or the master dual.  ``primed_alpha`` /
    ``primed_beta`` are the master dual values the members can read
    (inherited from earlier waves); ``component`` is 0 for whole-epoch
    jobs and the component ordinal (by smallest member id) otherwise.
    """

    epoch: int
    component: int
    members: List[DemandInstance]
    index: InstanceIndex
    adjacency: ConflictAdjacency
    layout: InstanceLayout
    raise_rule: RaiseRule
    thresholds: Tuple[float, ...]
    mis_oracle: MISOracle
    primed_alpha: Dict[DemandId, float]
    primed_beta: Dict[EdgeKey, float]
    #: Which epoch kernel executes the job: ``"incremental"`` (the dict
    #: loop) or ``"vectorized"`` (the columnar kernel).  Vectorized jobs
    #: carry their prebuilt :class:`~repro.core.engines.columnar.ColumnarLayout`
    #: in ``columnar`` (it pickles, so process-backend workers get it on
    #: the wire) and leave ``index``/``adjacency`` empty -- the bucket
    #: structure inside the block replaces both.
    kernel: str = "incremental"
    columnar: Optional[object] = None

    def sliced(self) -> "EpochJob":
        """The job with its layout cut down to the member slice.

        This is the process backend's wire form: the full
        :class:`InstanceLayout` indexes *every* instance of the problem,
        but a job only ever reads ``layout.pi`` for its own members, so
        shipping the rest would pay pickling cost for nothing.
        (``replace`` keeps every other field, the columnar block
        included -- a vectorized job's block already is its wire form.)
        """
        pi = {d.instance_id: self.layout.pi[d.instance_id] for d in self.members}
        group_of = {i: self.epoch for i in pi}
        layout = InstanceLayout(
            group_of=group_of, pi=pi, n_epochs=self.layout.n_epochs
        )
        return replace(self, layout=layout)


@dataclass
class EpochOutcome:
    """Everything one epoch job produced, pending the ordered merge."""

    epoch: int
    component: int
    events: List[RaiseEvent]
    stack: List[List[DemandInstance]]
    counters: PhaseCounters
    alpha_writes: Dict[DemandId, float]
    beta_writes: Dict[EdgeKey, float]

    @property
    def sort_key(self) -> Tuple[int, int]:
        """Merge position: epoch-major, component-minor."""
        return (self.epoch, self.component)


def dual_writes(local: Dict, primed: Dict) -> Dict:
    """The entries of *local* that differ from what was primed -- one
    epoch's dual *writes*, the unit the engine's ordered merge applies.
    Shared by the incremental and columnar job bodies so the filtering
    discipline (and its empty-primed fast path) lives in one place."""
    if not primed:
        return local
    return {
        k: v for k, v in local.items() if k not in primed or primed[k] != v
    }


def run_epoch_job(job: EpochJob) -> EpochOutcome:
    """Execute one sealed job; the worker function of every backend.

    Runs the job's epoch kernel -- the exact incremental loop body, or
    the columnar kernel for ``kernel="vectorized"`` jobs -- over a local
    dual primed with the job's inherited values, then reports only the
    *writes* (values that differ from what was primed) so the engine
    can merge disjoint epochs without re-deriving anything.
    """
    if job.kernel == "vectorized":
        # Lazy import: columnar imports from this module at import time.
        from repro.core.engines.columnar import run_columnar_job_body

        return run_columnar_job_body(job)
    if job.kernel == "admission":
        # Lazy import: admission imports from this module at import time.
        from repro.core.engines.admission import run_admission_job_body

        return run_admission_job_body(job)
    members = job.members
    by_id = {d.instance_id: d for d in members}
    local = DualState(use_height_rule=job.raise_rule.use_height_rule)
    local.alpha.update(job.primed_alpha)
    local.beta.update(job.primed_beta)
    events: List[RaiseEvent] = []
    stack: List[List[DemandInstance]] = []
    counters = PhaseCounters()
    run_epoch_incremental(
        job.epoch, members, by_id, local, job.index, job.adjacency,
        job.layout, job.raise_rule, job.thresholds, job.mis_oracle,
        events, stack, counters, order=0,
    )
    return EpochOutcome(
        job.epoch, job.component, events, stack, counters,
        dual_writes(local.alpha, job.primed_alpha),
        dual_writes(local.beta, job.primed_beta),
    )


def _run_jobs(jobs: Sequence[EpochJob]) -> List[EpochOutcome]:
    """Run a chunk of jobs in order (the pool-submitted unit of work)."""
    return [run_epoch_job(job) for job in jobs]


def _timed_run_jobs(
    jobs: Sequence[EpochJob], t_submit: float
) -> Tuple[float, List[EpochOutcome]]:
    """:func:`_run_jobs` plus the chunk's queue wait (start - submit).

    Module-level so the process backend can pickle it; the wait is
    measured with ``time.perf_counter``, which on Linux is the
    system-wide monotonic clock -- comparable across forked pool
    workers, so cross-process queue waits are real, not garbage.
    """
    wait = time.perf_counter() - t_submit
    return wait, _run_jobs(jobs)


def _record_wave(backend: str, workers: int, n_chunks: int, waits: List[float]) -> None:
    """Fold one dispatched wave into the process-default registry.

    Always-on (no opt-in plumbing down here): the cost is a few dict
    lookups per *wave*, invisible next to the jobs themselves, and it
    means pool health is observable even from services that did not
    enable request tracing.
    """
    registry = default_registry()
    registry.counter("repro_pool_waves_total", backend=backend).inc()
    registry.gauge("repro_pool_utilization", backend=backend).set(
        n_chunks / workers
    )
    if waits:
        series = registry.histogram(
            "repro_pool_queue_wait_seconds", backend=backend
        )
        for wait in waits:
            series.observe(max(0.0, wait))


class EpochExecutorBackend:
    """Where epoch jobs run.  Implementations must return one outcome
    per job; order within the returned list is immaterial (the engine
    merges by ``(epoch, component)``), but every job must complete."""

    name: str = "?"
    #: Worker count to attribute in ``PhaseCounters.workers_used``.
    workers: int = 1

    def run_wave(self, jobs: Sequence[EpochJob]) -> List[EpochOutcome]:
        raise NotImplementedError


class SerialBackend(EpochExecutorBackend):
    """Run every job inline, in order -- the debugging backend."""

    name = "serial"
    workers = 1

    def run_wave(self, jobs: Sequence[EpochJob]) -> List[EpochOutcome]:
        return _run_jobs(jobs)


class _PooledBackend(EpochExecutorBackend):
    """Shared chunking logic of the thread and process backends.

    A wave is split into at most ``workers`` strided chunks; the calling
    thread executes the first chunk itself (caller-runs) while the pool
    chews the rest, so a wave costs at most ``workers - 1`` dispatches.
    """

    def __init__(self, workers: int) -> None:
        self.workers = workers
        #: The executor the last wave dispatched on -- the process
        #: backend's broken-pool eviction must target exactly this
        #: instance, never whatever happens to be registered now.
        self._last_pool: Optional[Executor] = None

    def _pool(self):
        raise NotImplementedError

    def _prepare(self, jobs: List[EpochJob]) -> List[EpochJob]:
        return jobs

    def run_wave(self, jobs: Sequence[EpochJob]) -> List[EpochOutcome]:
        jobs = self._prepare(list(jobs))
        if len(jobs) <= 1 or self.workers == 1:
            return _run_jobs(jobs)
        n_chunks = min(self.workers, len(jobs))
        chunks = [jobs[c::n_chunks] for c in range(n_chunks)]
        pool = self._pool()
        self._last_pool = pool
        t_submit = time.perf_counter()
        futures = [
            pool.submit(_timed_run_jobs, chunk, t_submit)
            for chunk in chunks[1:]
        ]
        done = _run_jobs(chunks[0])
        waits = []
        for fut in futures:
            wait, outcomes = fut.result()
            waits.append(wait)
            done.extend(outcomes)
        _record_wave(self.name, self.workers, n_chunks, waits)
        return done


#: Process-wide executor caches, one pool per worker count.  Pool
#: start-up costs a few hundred microseconds (threads) to tens of
#: milliseconds (processes) -- comparable to a whole small first phase
#: -- so pools are kept warm across solves.  :func:`shutdown_pools`
#: tears every family down explicitly (the async front door's drain
#: path and the lifecycle tests use it); an ``atexit`` hook runs it at
#: interpreter exit so retired executors never outlive the process.
_THREAD_POOLS: Dict[int, ThreadPoolExecutor] = {}
_PROCESS_POOLS: Dict[int, ProcessPoolExecutor] = {}

_PoolT = TypeVar("_PoolT", bound=Executor)


def _warm_pool(
    pools: Dict[int, _PoolT], workers: int, factory: Callable[[], _PoolT]
) -> _PoolT:
    """Fetch-or-create a keyed warm pool (shared get/setdefault dance).

    Two threads can race past the ``get`` and both construct an
    executor; ``setdefault`` picks one winner, and the loser is shut
    down immediately -- an orphaned :class:`ThreadPoolExecutor` would
    otherwise keep unjoined idle threads alive for the process
    lifetime (neither pool has run anything yet, so the losing
    shutdown is instant).
    """
    pool = pools.get(workers)
    if pool is None:
        fresh = factory()
        pool = pools.setdefault(workers, fresh)
        if pool is not fresh:
            fresh.shutdown(wait=False)
    return pool


def _shared_thread_pool(workers: int) -> ThreadPoolExecutor:
    return _warm_pool(
        _THREAD_POOLS,
        workers,
        lambda: ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-epoch"
        ),
    )


#: Warm request-level pools for the scheduling service, kept separate
#: from the epoch pools above.  Sharing one executor instance between
#: the two layers would deadlock: a service thread running an
#: ``engine="parallel"``/``backend="thread"`` solve submits epoch
#: chunks and then *blocks* on their futures -- if those chunks queue
#: behind other blocked service requests in the same executor, nothing
#: ever runs them.  Distinct instances keep every wait on a pool that
#: only executes the layer below it.
_SERVICE_POOLS: Dict[int, ThreadPoolExecutor] = {}


def shared_service_pool(workers: int) -> ThreadPoolExecutor:
    """The warm request-dispatch pool of :mod:`repro.service.server`.

    Same keyed-by-worker-count, warm-across-solves discipline as the
    epoch pools (see :data:`_THREAD_POOLS`), but a separate executor
    family so request-level waits can never starve epoch-level jobs.
    """
    if workers < 1:
        raise ValueError(f"pool workers must be positive, got {workers}")
    return _warm_pool(
        _SERVICE_POOLS,
        workers,
        lambda: ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        ),
    )


def shutdown_pools(wait: bool = True) -> int:
    """Shut down every warm pool (all three families); returns the count.

    The explicit teardown of the warm-pool discipline: the async front
    door's graceful drain calls it once all requests are resolved, the
    lifecycle tests call it to assert zero live executors, and an
    ``atexit`` hook calls it so interpreter shutdown reaps worker
    processes deterministically.  Safe to call at any quiescent point
    -- the next solve simply re-warms pools on demand -- but a solve
    *concurrently* holding a popped pool may see "cannot schedule new
    futures after shutdown"; callers drain first.
    """
    count = 0
    for pools in (_THREAD_POOLS, _PROCESS_POOLS, _SERVICE_POOLS):
        while pools:
            _, pool = pools.popitem()
            pool.shutdown(wait=wait)
            count += 1
    return count


atexit.register(shutdown_pools)


def _forget_pools_in_child() -> None:
    """Clear the warm-pool registries in a freshly forked child.

    Fork copies the registry dicts but not the pool *threads* (only the
    forking thread survives in the child), so an inherited executor is
    a zombie: submitting to it enqueues work no thread will ever run,
    and the first solve in a forked shard worker would deadlock on a
    future that never resolves.  Clearing -- not shutting down: there
    are no threads to join, and ``shutdown`` would try -- makes the
    child re-warm its own pools on first use.  Registered via
    ``os.register_at_fork``, so every fork path is covered: the shard
    workers of :mod:`repro.service.shard`, the process backend's own
    workers (which never touch pools, but harmlessly get clean state),
    and any user ``multiprocessing`` on top of the library.
    """
    for pools in (_THREAD_POOLS, _PROCESS_POOLS, _SERVICE_POOLS):
        pools.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_forget_pools_in_child)


def _mp_context():
    """Fork on Linux only: child start-up is milliseconds and scripts
    run as ``__main__`` need no re-import.  macOS nominally supports
    fork but system frameworks abort forked children ("fork safety"),
    and Windows has no fork -- both get the platform default (spawn).
    Forking with warm pool threads alive draws a DeprecationWarning on
    3.12+; it is benign here because the forked workers never touch the
    parent's executor state, only their own pipe."""
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _shared_process_pool(workers: int) -> ProcessPoolExecutor:
    return _warm_pool(
        _PROCESS_POOLS,
        workers,
        lambda: ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context()
        ),
    )


class ThreadBackend(_PooledBackend):
    """Warm thread pool: shared memory, zero copying, GIL-cooperative."""

    name = "thread"

    def _pool(self) -> ThreadPoolExecutor:
        return _shared_thread_pool(self.workers)


class ProcessBackend(_PooledBackend):
    """Warm process pool: pickled job slices, real CPU parallelism."""

    name = "process"

    def _prepare(self, jobs: List[EpochJob]) -> List[EpochJob]:
        # Each wire job gets a *private clone* of its oracle, made here
        # while nothing is executing yet.  Submitted jobs are pickled
        # lazily by the pool's feeder thread, concurrently with the
        # caller-runs chunk -- if jobs still shared one stateful oracle
        # (Luby's per-epoch RNG dict), an inline job's mutation could
        # race that pickling ("dictionary changed size during
        # iteration").  Cloning up front seals every job completely.
        prepared = []
        for job in jobs:
            wire = job.sliced()
            wire.mis_oracle = pickle.loads(pickle.dumps(wire.mis_oracle))
            prepared.append(wire)
        return prepared

    def _pool(self) -> ProcessPoolExecutor:
        return _shared_process_pool(self.workers)

    def run_wave(self, jobs: Sequence[EpochJob]) -> List[EpochOutcome]:
        try:
            return super().run_wave(jobs)
        except BrokenProcessPool:
            # A crashed worker poisons the whole executor; evict it so
            # the next solve gets a fresh pool instead of instant
            # re-failure from the warm cache -- and *shut it down*, or
            # the evicted executor's management thread, call-queue
            # feeder and dead worker processes leak for the process
            # lifetime.  Evict only if the registry still holds the
            # pool *this wave ran on*: a concurrent failure may already
            # have evicted it and a healthy replacement may be serving
            # other solves -- popping (let alone cancel-shutting) that
            # one would spuriously fail unrelated work.  ``wait=False``:
            # the manager thread is already tearing the broken pool's
            # internals down; blocking here would stall the error path.
            broken = self._last_pool
            if broken is not None and _PROCESS_POOLS.get(self.workers) is broken:
                _PROCESS_POOLS.pop(self.workers, None)
            if broken is not None:
                broken.shutdown(wait=False, cancel_futures=True)
            raise


def make_backend(backend: Optional[str], workers: int) -> EpochExecutorBackend:
    """Instantiate the named (or env-resolved) backend."""
    name = resolve_backend(backend)
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(workers)
    return ProcessBackend(workers)
