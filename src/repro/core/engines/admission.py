"""The second-phase admission engines: pluggable, sliced, journaled.

The second phase of the framework pops the first phase's MIS stack in
reverse and greedily admits every instance that keeps the solution
feasible (:class:`~repro.core.solution.CapacityLedger`).  This module
gives that ~10-line loop the same contract discipline as the
first-phase engine matrix -- three interchangeable implementations
behind ``phase2_engine=`` on
:func:`~repro.core.framework.run_two_phase`:

* ``phase2_engine="reference"`` (default) -- the literal reversed-stack
  greedy pop, byte-for-byte the historical ``run_second_phase`` loop.
  It is the executable specification.
* ``phase2_engine="sliced"`` -- partitions the stack's instances into
  *capacity-disjoint components* (union-find over shared path edges
  and shared demand ids, the stack-level analogue of
  :meth:`~repro.core.plan.EpochPlan.epoch_components`), pops every
  component independently on an
  :class:`~repro.core.engines.backends.EpochExecutorBackend`
  (``thread``/``process``/``serial``), and merges the selections
  deterministically.  Components share no capacity constraint and no
  demand, so the union of the per-component greedy pops *is* the
  global greedy pop -- bit-identical, not merely equivalent.
* ``phase2_engine="vectorized"`` -- a columnar admission kernel in the
  :mod:`~repro.core.engines.columnar` style: the stack's instances are
  encoded once into a CSR edge-column ledger (float64 loads, ``intp``
  path columns), and each popped batch runs one segmented fits-check
  (demand-used gather + per-candidate ``bincount`` of violated edge
  slots) followed by one scatter-add of the admitted heights.  An MIS
  batch is an independent set of the conflict graph -- no two members
  share a path edge or a demand -- so the batch's admission decisions
  are independent and the simultaneous check reproduces the reference
  loop's sequential decisions exactly; batches that *do* collide
  internally (only constructible synthetically) fall back to an exact
  scalar loop over the same arrays, keeping bit-identity universal.

Bit-identity argument, shared by both non-reference engines: the
reference pop admits instance ``d`` iff its demand is unused *and*
every edge of ``path(d)`` has residual capacity -- state that lives
entirely inside ``d``'s capacity component.  Per edge, at most one
instance per batch is admitted (batch members are edge-disjoint), so
each engine performs the same float64 additions in the same batch
order on every edge.  :meth:`Solution.from_instances` sorts by
instance id, which collapses any merge-order difference.

Journal integration (delta serving)
-----------------------------------

When a :class:`~repro.core.engines.journal.FirstPhaseJournal` is
installed (the service's delta path), :func:`run_second_phase` records
one :class:`~repro.core.engines.journal.AdmissionRecord` per capacity
component -- its input signature (member content in pop order, the
restricted dual digest, the capacity configuration) and its selected
ids -- into the solve's
:class:`~repro.core.engines.journal.SolveJournal`.  A later delta
solve replays the selections of every component whose signature still
matches its ancestor's and re-pops only the dirty ones, with the same
certify-vs-rerun parity as the first-phase epoch replay: a signature
match proves the cold pop would have made identical decisions, so
replaying *is* running.  ``repro_admission_components_total`` /
``repro_admission_replayed_total`` count that work in the process
telemetry registry (always-on, like the backend wave counters).
"""
from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.demand import DemandInstance
from repro.core.dual import DualState
from repro.core.engines.artifacts import PhaseCounters
from repro.core.engines.backends import default_workers, make_backend
from repro.core.engines.journal import (
    AdmissionRecord,
    active_journal,
    admission_config,
    admission_signature,
)
from repro.core.solution import CapacityLedger, Solution
from repro.core.types import EPS, InstanceId
from repro.obs.metrics import default_registry

__all__ = [
    "ADMISSION_ENGINES",
    "AdmissionComponent",
    "AdmissionJob",
    "AdmissionOutcome",
    "run_admission_job_body",
    "run_second_phase",
    "stack_components",
    "validate_admission_engine",
]

#: The interchangeable second-phase engines (see the module docstring).
ADMISSION_ENGINES = ("reference", "sliced", "vectorized")

Stack = Sequence[Sequence[DemandInstance]]


def validate_admission_engine(engine: str) -> str:
    """Validate a second-phase engine name (the single source of truth).

    Everything that accepts ``phase2_engine=`` -- the ``solve_*`` entry
    points via :func:`repro.algorithms.base.validate_engine_knobs`,
    :class:`~repro.service.fingerprint.SolveKnobs` and
    :func:`run_second_phase` itself -- funnels through this check.
    """
    if engine not in ADMISSION_ENGINES:
        raise ValueError(
            f"unknown phase2 engine {engine!r}; choose from {ADMISSION_ENGINES}"
        )
    return engine


# ----------------------------------------------------------------------
# Capacity-disjoint components of a stack
# ----------------------------------------------------------------------


@dataclass
class AdmissionComponent:
    """One capacity-disjoint slice of a stack.

    ``key`` is the smallest member instance id -- the stable identity
    the journal records components under (ordinals shift when churn
    merges or splits components; the smallest-id key makes unrelated
    components collide as rarely as possible, and a collision only ever
    costs a re-pop, never a wrong replay).  ``batches`` is the stack
    restricted to the component's members, empty batches dropped, in
    original stack order -- popping it reversed reproduces exactly the
    reference loop's visit order for these members.
    """

    ordinal: int
    key: InstanceId
    batches: List[List[DemandInstance]]


def stack_components(stack: Stack) -> List[AdmissionComponent]:
    """Partition *stack*'s instances into capacity-disjoint components.

    Union-find over the conflict relation the admission loop actually
    consults: two instances interact iff they share a path edge (edge
    capacity) or a demand id (one-instance-per-demand).  Instances in
    different components therefore read and write disjoint ledger
    state, which is what makes per-component admission exact.
    Components are ordered by ascending smallest member id, mirroring
    :meth:`~repro.core.plan.EpochPlan.epoch_components`.
    """
    parent: Dict[InstanceId, InstanceId] = {}

    def find(i: InstanceId) -> InstanceId:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return root

    def union(a: InstanceId, b: InstanceId) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            # Smaller root wins, so a component's root is its key.
            if rb < ra:
                ra, rb = rb, ra
            parent[rb] = ra

    demand_owner: Dict[object, InstanceId] = {}
    edge_owner: Dict[object, InstanceId] = {}
    for batch in stack:
        for d in batch:
            i = d.instance_id
            if i not in parent:
                parent[i] = i
            union(i, demand_owner.setdefault(d.demand_id, i))
            for e in d.path_edges:
                union(i, edge_owner.setdefault(e, i))

    # One pass over the stack assigns every occurrence to its
    # component's sub-stack, preserving batch order and within-batch
    # input order (the per-component pop re-sorts by id exactly like
    # the reference loop does).
    per_root: Dict[InstanceId, List[List[DemandInstance]]] = {}
    for batch in stack:
        touched: Dict[InstanceId, List[DemandInstance]] = {}
        for d in batch:
            touched.setdefault(find(d.instance_id), []).append(d)
        for root, sub in touched.items():
            per_root.setdefault(root, []).append(sub)
    return [
        AdmissionComponent(ordinal=n, key=root, batches=per_root[root])
        for n, root in enumerate(sorted(per_root))
    ]


# ----------------------------------------------------------------------
# Reference pop (the executable specification)
# ----------------------------------------------------------------------


def _pop_reference(stack: Stack) -> Tuple[List[DemandInstance], int]:
    """The literal reversed-stack greedy pop; returns (selected, checks).

    Byte-for-byte the historical ``run_second_phase`` loop -- the only
    addition is the candidate count, one per (batch, instance) visit.
    """
    ledger = CapacityLedger()
    selected: List[DemandInstance] = []
    checks = 0
    for batch in reversed(stack):
        for d in sorted(batch, key=lambda x: x.instance_id):
            checks += 1
            if ledger.fits(d):
                ledger.add(d)
                selected.append(d)
    return selected, checks


# ----------------------------------------------------------------------
# Vectorized pop (columnar CSR ledger)
# ----------------------------------------------------------------------


def _pop_vectorized(stack: Stack) -> Tuple[List[DemandInstance], int]:
    """Columnar admission: segmented fits-checks over a CSR edge ledger.

    Encodes the stack's distinct instances once -- heights as float64,
    demand ids and path edges as ``intp`` columns (CSR) -- then pops
    each batch with one vectorized round: gather the candidates' edge
    loads, count violated slots per candidate (``np.bincount`` over the
    CSR owner column), mask out used demands, scatter-add the admitted
    heights.  Bit-identity with the reference loop rests on MIS batches
    being independent sets (no shared edge, no shared demand within a
    batch): each edge receives at most one float64 add per batch, in
    batch order -- the reference ledger's exact addition schedule.  A
    batch with internal collisions (synthetic stacks only) drops to an
    exact scalar loop over the same arrays.
    """
    by_id: Dict[InstanceId, DemandInstance] = {}
    for batch in stack:
        for d in batch:
            by_id.setdefault(d.instance_id, d)
    if not by_id:
        return [], 0
    ids = sorted(by_id)
    row_of = {i: r for r, i in enumerate(ids)}
    demand_col: Dict[object, int] = {}
    edge_col: Dict[object, int] = {}
    heights = np.empty(len(ids), dtype=np.float64)
    dcol = np.empty(len(ids), dtype=np.intp)
    indptr = np.zeros(len(ids) + 1, dtype=np.intp)
    cols: List[int] = []
    for r, i in enumerate(ids):
        d = by_id[i]
        heights[r] = d.height
        dcol[r] = demand_col.setdefault(d.demand_id, len(demand_col))
        for e in sorted(d.path_edges):
            cols.append(edge_col.setdefault(e, len(edge_col)))
        indptr[r + 1] = len(cols)
    indices = np.asarray(cols, dtype=np.intp)
    load = np.zeros(len(edge_col), dtype=np.float64)
    used = np.zeros(len(demand_col), dtype=bool)
    limit = 1.0 + EPS

    selected: List[DemandInstance] = []
    checks = 0
    for batch in reversed(stack):
        ordered = sorted(batch, key=lambda x: x.instance_id)
        if not ordered:
            continue
        checks += len(ordered)
        rows = np.asarray([row_of[d.instance_id] for d in ordered], dtype=np.intp)
        counts = indptr[rows + 1] - indptr[rows]
        ends = np.cumsum(counts)
        begins = ends - counts
        pos = (
            np.arange(int(ends[-1]), dtype=np.intp)
            - np.repeat(begins, counts)
            + np.repeat(indptr[rows], counts)
        )
        edges = indices[pos]
        drows = dcol[rows]
        collides = (
            len(np.unique(drows)) < len(rows)
            or len(np.unique(edges)) < len(edges)
        )
        if collides:
            # Exact scalar fallback on the same arrays: visit order,
            # predicate and addition schedule match the reference loop.
            for k, d in enumerate(ordered):
                r = rows[k]
                span = indices[indptr[r]:indptr[r + 1]]
                if used[dcol[r]]:
                    continue
                if np.any(load[span] + heights[r] > limit):
                    continue
                load[span] += heights[r]
                used[dcol[r]] = True
                selected.append(d)
            continue
        owner = np.repeat(np.arange(len(rows), dtype=np.intp), counts)
        violated = load[edges] + np.repeat(heights[rows], counts) > limit
        bad = np.bincount(owner, weights=violated, minlength=len(rows))
        fits = (~used[drows]) & (bad == 0)
        if fits.any():
            admit_slots = fits[owner]
            load[edges[admit_slots]] += np.repeat(heights[rows], counts)[
                admit_slots
            ]
            used[drows[fits]] = True
            selected.extend(d for k, d in enumerate(ordered) if fits[k])
    return selected, checks


# ----------------------------------------------------------------------
# Sliced pop (component jobs on the executor backends)
# ----------------------------------------------------------------------


@dataclass
class AdmissionJob:
    """One sealed unit of second-phase work: a capacity component's pop.

    Executes on the same :class:`EpochExecutorBackend` substrate as
    first-phase epoch jobs (``kernel="admission"`` dispatches in
    :func:`~repro.core.engines.backends.run_epoch_job`).  ``mis_oracle``
    and :meth:`sliced` exist so the process backend's wire preparation
    -- ``job.sliced()`` then re-pickling the oracle -- works unchanged;
    the batches already are the minimal wire form.
    """

    component: int
    batches: List[List[DemandInstance]]
    kernel: str = "admission"
    mis_oracle: object = None

    def sliced(self) -> "AdmissionJob":
        return replace(self)


@dataclass
class AdmissionOutcome:
    """One component's pop result, pending the ordered merge."""

    component: int
    selected: List[DemandInstance]
    checks: int

    @property
    def sort_key(self) -> Tuple[int, int]:
        return (self.component, 0)


def run_admission_job_body(job: AdmissionJob) -> AdmissionOutcome:
    """Execute one admission job (the backend worker function)."""
    selected, checks = _pop_reference(job.batches)
    return AdmissionOutcome(job.component, selected, checks)


def _pop_sliced(
    stack: Stack,
    components: List[AdmissionComponent],
    workers: Optional[int],
    backend: Optional[str],
) -> Tuple[List[DemandInstance], int]:
    """Pop every component on an executor backend; merge by ordinal."""
    jobs = [AdmissionJob(c.ordinal, c.batches) for c in components]
    exec_backend = make_backend(
        backend, workers if workers is not None else default_workers()
    )
    outcomes = sorted(exec_backend.run_wave(jobs), key=lambda o: o.sort_key)
    selected: List[DemandInstance] = []
    checks = 0
    for outcome in outcomes:
        selected.extend(outcome.selected)
        checks += outcome.checks
    return selected, checks


# ----------------------------------------------------------------------
# Journaled pop (record per component, replay certified ones)
# ----------------------------------------------------------------------


def _pop_component(
    component: AdmissionComponent, engine: str
) -> Tuple[List[DemandInstance], int]:
    """Re-pop one dirty component with the requested kernel, inline.

    The journaled path runs components on the calling thread (like the
    journaled first phase): the latency win of a delta solve is the
    replay, not pop parallelism, and inline execution keeps the
    record/replay bookkeeping trivially ordered.
    """
    if engine == "vectorized":
        return _pop_vectorized(component.batches)
    return _pop_reference(component.batches)


def _run_second_phase_journaled(
    stack: Stack,
    engine: str,
    dual: Optional[DualState],
    journal,
) -> Tuple[List[DemandInstance], int, int]:
    """Record/replay admission per component; returns
    ``(selected, checks, components)``.

    Mirrors the first-phase journaled runner: each component's inputs
    are captured by :func:`~repro.core.engines.journal.admission_signature`
    (member content in pop order, restricted dual digest, capacity
    config); a component whose ancestor record carries the same
    signature replays its recorded selection -- by construction the
    cold pop's exact output, since greedy admission is a pure function
    of exactly the signed inputs -- and everything else re-pops fresh.
    Both outcomes are recorded into the fresh journal, so every delta
    solve hands a complete admission log to the next one.
    """
    components = stack_components(stack)
    past, log = journal.begin_admission(admission_config())
    selected: List[DemandInstance] = []
    checks = 0
    replayed = 0
    for component in components:
        signature = admission_signature(component.batches, dual)
        record = past.records.get(component.key) if past is not None else None
        if record is not None and record.signature == signature:
            by_id = {
                d.instance_id: d
                for batch in component.batches
                for d in batch
            }
            selected.extend(by_id[i] for i in record.selected_ids)
            checks += record.checks
            journal.admission_replayed += 1
            replayed += 1
        else:
            sel, comp_checks = _pop_component(component, engine)
            selected.extend(sel)
            checks += comp_checks
            journal.admission_rerun += 1
            record = AdmissionRecord(
                signature=signature,
                selected_ids=tuple(d.instance_id for d in sel),
                checks=comp_checks,
            )
        log.records[component.key] = record
    journal.admission_components += len(components)
    _record_admission(len(components), replayed)
    return selected, checks, len(components)


def _record_admission(components: int, replayed: int) -> None:
    """Fold one second phase into the process-default registry
    (always-on, following the backend wave-counter precedent)."""
    registry = default_registry()
    if components:
        registry.counter("repro_admission_components_total").inc(components)
    if replayed:
        registry.counter("repro_admission_replayed_total").inc(replayed)


# ----------------------------------------------------------------------
# The engine facade
# ----------------------------------------------------------------------


def run_second_phase(
    stack: Stack,
    engine: str = "reference",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    dual: Optional[DualState] = None,
    counters: Optional[PhaseCounters] = None,
) -> Solution:
    """Run the second phase: pop in reverse, admit greedily if feasible.

    ``engine`` selects the implementation (see the module docstring);
    all engines produce bit-identical solutions.  ``workers`` and
    ``backend`` configure the sliced engine's executor pool (ignored
    otherwise).  ``dual`` is folded into the admission journal's
    component signatures when a journal is active; ``counters``, when
    given, receives the real admission work account
    (``phase2_rounds`` = non-empty batches popped, plus
    ``admission_checks`` / ``admitted`` / ``rejected``).
    """
    validate_admission_engine(engine)
    journal = active_journal()
    if journal is not None:
        selected, checks, _ = _run_second_phase_journaled(
            stack, engine, dual, journal
        )
    elif engine == "sliced":
        components = stack_components(stack)
        selected, checks = _pop_sliced(stack, components, workers, backend)
        _record_admission(len(components), 0)
    elif engine == "vectorized":
        selected, checks = _pop_vectorized(stack)
    else:
        selected, checks = _pop_reference(stack)
    if counters is not None:
        counters.phase2_rounds = sum(1 for batch in stack if batch)
        counters.admission_checks = checks
        counters.admitted = len(selected)
        counters.rejected = checks - len(selected)
    return Solution.from_instances(selected)
