"""The vectorized (columnar) first-phase engine.

``engine="vectorized"`` runs the exact epoch computation of
:func:`~repro.core.engines.incremental.run_epoch_incremental` over a
numpy-columnar encoding of the epoch's members instead of python dicts:

* :class:`ColumnarLayout` -- one epoch's members re-encoded as float64
  value arrays (profits, height coefficients, raise denominators) and
  CSR ``intp`` index arrays (path-edge columns, critical-edge columns,
  and the *conflict buckets* described below), with stable id<->row maps
  (rows are members in ascending instance id, so "sorted ids" and
  "ascending rows" coincide everywhere).
* :func:`run_epoch_columnar` -- the epoch/stage/step loop with the LHS
  cache as one float64 array, tau-satisfaction as one vectorized
  compare, MIS as segmented reductions over the buckets, dual raises as
  gather/scatter along critical-edge columns, and the dirty-set
  recomputation as a masked re-reduction -- all scratch buffers
  preallocated per epoch and reused across stages and steps.
* At epoch exit the raise events are decoded back into
  :class:`~repro.core.dual.RaiseEvent` / stack batches and the touched
  dual keys committed to the master
  :class:`~repro.core.dual.DualState` in first-write order with their
  final array values (bitwise the values per-event replay would
  produce -- see :func:`commit_epoch`), so ``TwoPhaseResult`` and every
  downstream consumer (second phase, journal, service digests) see
  artifacts indistinguishable from the serial engines'.

Conflict buckets instead of adjacency
-------------------------------------

The conflict graph over one epoch's members is a union of cliques: all
instances whose path contains edge ``e`` conflict pairwise, and all
instances of demand ``a`` conflict pairwise.  The kernel therefore
never materializes pairwise adjacency (the quadratic cost the
incremental engine pays in ``conflict_adj``): it keeps one CSR *bucket*
per edge column and per demand, and every per-step graph operation --
MIS local minima, blocking chosen rows' neighbors, collecting the dirty
set after a raise -- becomes a segmented ``np.minimum.reduceat`` /
``np.logical_or.reduceat`` over the bucket rows plus a
``np.repeat``-scatter back.

Bit-identity
------------

The kernel is bit-identical to ``engine="incremental"`` for the bundled
raise rules (:class:`~repro.core.dual.UnitRaise`,
:class:`~repro.core.dual.HeightRaise`) and MIS oracles (``greedy``,
``luby``, ``hash``) -- events, stacks, dual dicts *including insertion
order*, and the semantic counters all match, which
``tests/test_engine_equivalence.py`` pins across the whole workload
registry.  Three properties make that possible:

* LHS sums are evaluated with a guaranteed-sequential padded position
  loop (one fused add per path position, padded with a sentinel edge
  column whose beta is identically ``+0.0``), reproducing
  :meth:`DualState.lhs`'s left-to-right float accumulation exactly --
  ``np.add.reduceat`` would use pairwise summation and is deliberately
  *not* used.
* MIS members are pairwise non-conflicting, so one step's raises touch
  pairwise-disjoint dual keys: raising from the cached LHS array is
  bitwise identical to the incremental engine's fresh
  ``dual.slack(d)`` reads.
* The columnar Luby iteration draws priorities for the active rows in
  ascending row order -- the dict engine's ``sorted(active)`` draw
  order -- from the same per-epoch substream, and resolves exactly the
  same ``(priority, id)`` lexicographic local minima.

A *custom* raise rule or MIS oracle falls outside those guarantees
(arbitrary write patterns; possibly non-independent "MIS" sets), so the
kernel drops to a shadow mode that applies the rule sequentially on a
real :class:`DualState` -- same results as incremental, just without
the vectorized raise fast path.  Gating beyond that (the relaxed
feasible + certified contract, as for ``plan_granularity="component"``)
is therefore only ever needed for exotic float schedules, not for
anything shipped in this repo.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain, repeat
from operator import attrgetter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, HeightRaise, RaiseEvent, RaiseRule, UnitRaise
from repro.core.engines.artifacts import (
    FirstPhaseArtifacts,
    InstanceLayout,
    PhaseCounters,
    stall_error,
)
from repro.core.engines.backends import resolve_backend
from repro.core.types import EPS, EdgeKey
from repro.distributed.mis import (
    ROUNDS_PER_LUBY_ITERATION,
    HashLubyOracle,
    LubyOracle,
    MISOracle,
    greedy_mis,
    hashed_priority,
    instance_key,
)

__all__ = [
    "ColumnarLayout",
    "build_columnar",
    "build_columnar_epochs",
    "commit_epoch",
    "run_columnar_job_body",
    "run_epoch_columnar",
    "run_first_phase_vectorized",
]


@dataclass
class ColumnarLayout:
    """One epoch's members in columnar (struct-of-arrays) form.

    Rows are the members in ascending instance id.  Edge columns are a
    per-epoch vocabulary with column 0 reserved as an always-zero
    sentinel (the padding target of ``path_pad``); demand columns are a
    per-epoch vocabulary in first-appearance order.  Conflict buckets
    live in one id space: bucket ``c`` for edge column ``c`` (bucket 0
    always empty), then ``n_edges + a`` for demand column ``a``.

    The whole object pickles (numpy arrays, instance dataclasses and
    edge-key tuples all do), which is what lets the parallel executor
    ship prebuilt blocks to process-backend workers inside
    :class:`~repro.core.engines.backends.EpochJob`.
    """

    epoch: int
    #: Members in ascending instance id (row order).
    instances: List[DemandInstance]
    ids: np.ndarray  # (m,) intp -- instance id per row, ascending
    profit: np.ndarray  # (m,) float64
    coeff: np.ndarray  # (m,) float64 -- LHS beta coefficient (height or 1.0)
    #: Edge-key vocabulary; index 0 is the ``None`` padding sentinel.
    edge_keys: List[Optional[EdgeKey]]
    #: Demand-id vocabulary (first appearance order) and per-row column.
    demand_ids: List[int]
    dcol: np.ndarray  # (m,) intp
    # Path edges (the LHS support), CSR + padded-position form.
    path_indptr: np.ndarray  # (m+1,) intp
    path_cols: np.ndarray  # (nnz,) intp -- frozenset iteration order per row
    path_len: np.ndarray  # (m,) intp
    path_pad: np.ndarray  # (Lmax, m) intp -- column 0 where padded
    # Critical edges (the raise support), CSR + original tuples.
    pi_indptr: np.ndarray  # (m+1,) intp
    pi_cols: np.ndarray  # (pi_nnz,) intp
    pi_tuples: List[Tuple[EdgeKey, ...]]
    # Conflict buckets (cliques): rows sorted by bucket id plus the
    # compacted non-empty segments (ids ascending, offsets, sizes) --
    # only non-empty buckets are ever represented, so a vocabulary
    # shared across epochs, most of whose buckets are empty in any one
    # block, costs the per-step reductions and gathers nothing.
    bucket_rows: np.ndarray  # (bnnz,) intp -- ascending rows per bucket
    red_buckets: np.ndarray  # (k,) intp -- non-empty bucket ids
    red_indptr: np.ndarray  # (k+1,) intp -- segment offsets into bucket_rows
    red_sizes: np.ndarray  # (k,) intp
    nb_of_row: np.ndarray  # (m,) intp -- path_len + 1 (the demand bucket)
    #: Raise-rule encoding: "unit" / "height" vectorize; "custom" shadows.
    rule_kind: str
    use_alpha: bool
    denom: np.ndarray  # (m,) float64 -- delta = slack / denom
    incfac: np.ndarray  # (m,) float64 -- beta increment = incfac * delta
    #: False when some row's critical edges leak outside its own path
    #: columns (never true for the bundled layouts); forces shadow mode
    #: because the cached-LHS raise argument above would not hold.
    pi_within_path: bool = True
    #: Hash-oracle identities, built lazily on first use.
    _ikeys: Optional[List[Tuple[int, int, int, int]]] = field(
        default=None, repr=False
    )

    @property
    def n_rows(self) -> int:
        return len(self.instances)

    @property
    def n_edges(self) -> int:
        return len(self.edge_keys)

    def ikeys(self) -> List[Tuple[int, int, int, int]]:
        if self._ikeys is None:
            self._ikeys = [instance_key(d) for d in self.instances]
        return self._ikeys


def _rule_kind(raise_rule: RaiseRule) -> str:
    """Exact-type detection: a subclass may override anything, so only
    the bundled classes themselves get the vectorized raise arithmetic."""
    if type(raise_rule) is UnitRaise:
        return "unit"
    if type(raise_rule) is HeightRaise:
        return "height"
    return "custom"


def _flatten_rows(
    instances: Sequence[DemandInstance], layout: InstanceLayout
) -> Tuple[List[EdgeKey], List[int], List[Tuple[EdgeKey, ...]], List[int]]:
    """One python pass over the rows: the flat edge-key stream (every
    row's path edges in iteration order, then every row's critical
    edges) plus the per-row lengths.

    Path keys are appended in each instance's ``path_edges`` iteration
    order -- the order :meth:`DualState.lhs` accumulates beta in, which
    the padded-position LHS loop must reproduce exactly -- via one
    C-speed ``chain.from_iterable`` pass; no per-edge python work
    happens here.
    """
    paths = list(map(attrgetter("path_edges"), instances))
    plen = list(map(len, paths))
    pi_tuples = list(
        map(layout.pi.__getitem__, map(attrgetter("instance_id"), instances))
    )
    pilen = list(map(len, pi_tuples))
    flat = list(chain.from_iterable(chain(paths, pi_tuples)))
    return flat, plen, pi_tuples, pilen


def _edge_vocab(
    flat: List[EdgeKey],
) -> Tuple[List[Optional[EdgeKey]], np.ndarray]:
    """Vocabulary of the flat key stream: the ``edge_keys`` list (index 0
    the ``None`` padding sentinel) and one column per stream position.

    Column *numbering* is an internal choice -- nothing semantic depends
    on vocabulary order (commit and priming translate through
    ``edge_keys``) -- so the keys are packed into an ``(nnz, 3)`` int64
    array and deduplicated with one ``np.unique`` instead of a per-edge
    dict probe.  Keys that are not integer triples (possible only for
    hand-rolled exotic problems) fall back to the dict loop.
    """
    if not flat:
        return [None], np.empty(0, np.intp)
    try:
        arr = np.fromiter(
            chain.from_iterable(flat), np.int64, 3 * len(flat)
        ).reshape(-1, 3)
    except (TypeError, ValueError, OverflowError):
        ecol: Dict[EdgeKey, int] = {}
        keys: List[Optional[EdgeKey]] = [None]
        out = np.empty(len(flat), np.intp)
        for i, e in enumerate(flat):
            c = ecol.get(e)
            if c is None:
                c = ecol[e] = len(keys)
                keys.append(e)
            out[i] = c
        return keys, out
    lo = arr.min(axis=0)
    span = (arr.max(axis=0) - lo + 1).tolist()
    if span[0] * span[1] * span[2] < 1 << 62:
        # The triples fit one int64 each: dedup on the packed scalars
        # (a plain sort) instead of the much slower axis-0 unique.
        packed = (
            (arr[:, 0] - lo[0]) * (span[1] * span[2])
            + (arr[:, 1] - lo[1]) * span[2]
            + (arr[:, 2] - lo[2])
        )
        _, first, inv = np.unique(packed, return_index=True, return_inverse=True)
    else:
        _, first, inv = np.unique(
            arr, axis=0, return_index=True, return_inverse=True
        )
    edge_keys: List[Optional[EdgeKey]] = [None]
    edge_keys.extend(map(flat.__getitem__, first.tolist()))
    return edge_keys, np.asarray(inv, np.intp).reshape(-1) + 1


def _segment_csr(
    sorted_buckets: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compacted CSR of a bucket-sorted membership list: the distinct
    bucket ids plus their segment offsets and sizes."""
    if not sorted_buckets.size:
        z = np.empty(0, np.intp)
        return z, np.zeros(1, np.intp), z
    is_start = np.empty(sorted_buckets.size, np.bool_)
    is_start[0] = True
    np.not_equal(sorted_buckets[1:], sorted_buckets[:-1], out=is_start[1:])
    seg_starts = np.flatnonzero(is_start)
    red_buckets = sorted_buckets[seg_starts]
    red_indptr = np.append(seg_starts, sorted_buckets.size)
    return red_buckets, red_indptr, np.diff(red_indptr)


def _assemble(
    epoch: int,
    instances: List[DemandInstance],
    raise_rule: RaiseRule,
    edge_keys: List[Optional[EdgeKey]],
    demand_ids: List[int],
    dcol: np.ndarray,
    path_len: np.ndarray,
    path_cols: np.ndarray,
    pilen: np.ndarray,
    pi_cols: np.ndarray,
    pi_tuples: List[Tuple[EdgeKey, ...]],
) -> ColumnarLayout:
    """Assemble one epoch's :class:`ColumnarLayout` from encoded rows.

    ``edge_keys`` / ``demand_ids`` may be shared by several epochs'
    blocks (the batched :func:`build_columnar_epochs` path); everything
    row-shaped is this epoch's slice.
    """
    m = len(instances)
    ids = np.fromiter(map(attrgetter("instance_id"), instances), np.intp, m)
    profit = np.fromiter(map(attrgetter("profit"), instances), np.float64, m)
    rule_kind = _rule_kind(raise_rule)
    use_height = raise_rule.use_height_rule
    heights = (
        np.fromiter(map(attrgetter("height"), instances), np.float64, m)
        if use_height or rule_kind == "height"
        else None
    )
    coeff = heights if use_height else np.ones(m, np.float64)
    path_indptr = np.zeros(m + 1, np.intp)
    np.cumsum(path_len, out=path_indptr[1:])
    pi_indptr = np.zeros(m + 1, np.intp)
    np.cumsum(pilen, out=pi_indptr[1:])
    n_edges = len(edge_keys)
    rows_rep = np.repeat(np.arange(m, dtype=np.intp), path_len)

    # Padded-position form of the path columns: pad[k, r] is row r's k-th
    # path column, or the zero sentinel past the row's length.
    l_max = int(path_len.max()) if m else 0
    path_pad = np.zeros((l_max, m), np.intp)
    if path_cols.size:
        pos = np.arange(path_cols.size, dtype=np.intp) - np.repeat(
            path_indptr[:-1], path_len
        )
        path_pad[pos, rows_rep] = path_cols

    # Critical edges must stay inside their own row's path columns (and
    # be within-row distinct) for the cached-LHS raise argument to hold;
    # checked vectorized on packed (row, column) pairs.
    pi_within_path = True
    if pi_cols.size:
        rows_pi = np.repeat(np.arange(m, dtype=np.intp), pilen)
        pairs_p = rows_rep * n_edges + path_cols
        pairs_pi = rows_pi * n_edges + pi_cols
        pi_within_path = bool(
            np.unique(pairs_pi).size == pairs_pi.size
            and np.isin(pairs_pi, pairs_p).all()
        )

    # Conflict buckets: edge bucket c (rows whose path contains column c)
    # then demand bucket n_edges + a.  Stable sort of the row-major
    # membership list keeps rows ascending within every bucket; segment
    # boundaries of the sorted ids give the compacted CSR directly (no
    # vocabulary-wide histogram).
    mem_buckets = np.concatenate([path_cols, n_edges + dcol])
    mem_rows = np.concatenate([rows_rep, np.arange(m, dtype=np.intp)])
    order = np.argsort(mem_buckets, kind="stable")
    bucket_rows = mem_rows[order]
    sorted_buckets = mem_buckets[order]
    red_buckets, red_indptr, red_sizes = _segment_csr(sorted_buckets)
    nb_of_row = path_len + 1

    npi = pilen.astype(np.float64)
    if rule_kind == "unit":
        denom = npi + 1.0 if raise_rule.use_alpha else npi.copy()
        incfac = np.ones(m, np.float64)
    elif rule_kind == "height":
        # Same association order as HeightRaise.delta / beta_increment.
        denom = 1.0 + 2.0 * heights * npi * npi
        incfac = 2.0 * npi
    else:
        denom = np.ones(m, np.float64)
        incfac = np.ones(m, np.float64)

    return ColumnarLayout(
        epoch=epoch,
        instances=instances,
        ids=ids,
        profit=profit,
        coeff=coeff,
        edge_keys=edge_keys,
        demand_ids=demand_ids,
        dcol=dcol,
        path_indptr=path_indptr,
        path_cols=path_cols,
        path_len=path_len,
        path_pad=path_pad,
        pi_indptr=pi_indptr,
        pi_cols=pi_cols,
        pi_tuples=pi_tuples,
        bucket_rows=bucket_rows,
        red_buckets=red_buckets,
        red_indptr=red_indptr,
        red_sizes=red_sizes,
        nb_of_row=nb_of_row,
        rule_kind=rule_kind,
        use_alpha=raise_rule.use_alpha,
        denom=denom,
        incfac=incfac,
        pi_within_path=pi_within_path,
    )


def build_columnar(
    epoch: int,
    members: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
) -> ColumnarLayout:
    """Encode one epoch's members into a :class:`ColumnarLayout`.

    One flattening pass collects the members' edge keys in row order;
    the vocabularies and every index array are vectorized numpy assembly
    from there (:func:`_edge_vocab`, :func:`_assemble`).
    """
    instances = sorted(members, key=attrgetter("instance_id"))
    m = len(instances)
    flat, plen, pi_tuples, pilen = _flatten_rows(instances, layout)
    edge_keys, cols = _edge_vocab(flat)
    path_len = np.asarray(plen, np.intp)
    nnz_p = int(path_len.sum()) if m else 0
    darr = np.fromiter(map(attrgetter("demand_id"), instances), np.intp, m)
    dvals, dinv = np.unique(darr, return_inverse=True)
    return _assemble(
        epoch,
        instances,
        raise_rule,
        edge_keys,
        dvals.tolist(),
        np.asarray(dinv, np.intp).reshape(-1),
        path_len,
        cols[:nnz_p],
        np.asarray(pilen, np.intp),
        cols[nnz_p:],
        pi_tuples,
    )


def build_columnar_epochs(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
) -> Tuple[Dict[int, ColumnarLayout], int, int]:
    """Encode every non-empty epoch over one *shared* vocabulary.

    Returns ``(blocks, n_edges, n_demands)``.  All blocks index the same
    global edge-column and demand-column spaces, so a single pair of
    float64 dual arrays can carry the numeric state across the whole
    phase -- the serial fast path's trick for skipping the per-epoch
    dict-to-array priming entirely -- and the flattening + vocabulary
    work is paid once for the phase instead of once per epoch.  (The
    per-block segmented reductions are immune to the wider bucket id
    space because they iterate the compacted non-empty segments.)

    Grouping happens here too, as one ``np.lexsort`` by ``(epoch,
    instance_id)`` -- the same (epoch ascending, id ascending within the
    epoch) row order :func:`group_members` + a per-epoch sort would
    produce, without the per-instance ``setdefault`` loop.
    """
    n = len(instances)
    gof = layout.group_of
    ids_list = list(map(attrgetter("instance_id"), instances))
    garr = np.fromiter(map(gof.__getitem__, ids_list), np.intp, n)
    iarr = np.asarray(ids_list, np.intp)
    row_order = np.lexsort((iarr, garr))
    all_rows = list(map(instances.__getitem__, row_order.tolist()))
    sg = garr[row_order]
    if n:
        seg = np.flatnonzero(sg[1:] != sg[:-1]) + 1
        bounds = np.concatenate([[0], seg, [n]])
    else:
        bounds = np.zeros(1, np.intp)
    epochs = sg[bounds[:-1]].tolist()
    flat, plen, pi_tuples, pilen = _flatten_rows(all_rows, layout)
    edge_keys, cols = _edge_vocab(flat)
    path_len = np.asarray(plen, np.intp)
    pilen_arr = np.asarray(pilen, np.intp)
    pcum = np.zeros(n + 1, np.intp)
    np.cumsum(path_len, out=pcum[1:])
    qcum = np.zeros(n + 1, np.intp)
    np.cumsum(pilen_arr, out=qcum[1:])
    nnz_p = int(pcum[-1])
    path_cols = cols[:nnz_p]
    pi_cols = cols[nnz_p:]
    darr = np.fromiter(map(attrgetter("demand_id"), all_rows), np.intp, n)
    dvals, dinv = np.unique(darr, return_inverse=True)
    demand_ids = dvals.tolist()
    dcol = np.asarray(dinv, np.intp).reshape(-1)
    blocks: Dict[int, ColumnarLayout] = {}
    for e, r0, r1 in zip(epochs, bounds[:-1].tolist(), bounds[1:].tolist()):
        blocks[e] = _assemble(
            e,
            all_rows[r0:r1],
            raise_rule,
            edge_keys,
            demand_ids,
            dcol[r0:r1],
            path_len[r0:r1],
            path_cols[pcum[r0] : pcum[r1]],
            pilen_arr[r0:r1],
            pi_cols[qcum[r0] : qcum[r1]],
            pi_tuples[r0:r1],
        )
    return blocks, len(edge_keys), len(demand_ids)


def _oracle_kind(mis_oracle: MISOracle) -> str:
    if mis_oracle is greedy_mis:
        return "greedy"
    if isinstance(mis_oracle, LubyOracle):
        return "luby"
    if isinstance(mis_oracle, HashLubyOracle):
        return "hash"
    return "custom"


def _bucket_gather(block: ColumnarLayout, buckets: np.ndarray) -> np.ndarray:
    """All rows of the given bucket ids, concatenated (with duplicates).

    Bucket ids resolve through the compacted segments via binary search;
    ids absent from the block (possible only for hand-rolled inputs --
    every bucket this engine asks for contains at least the asking row)
    contribute nothing.
    """
    red_buckets = block.red_buckets
    if not buckets.size or not red_buckets.size:
        return np.empty(0, np.intp)
    pos = np.searchsorted(red_buckets, buckets)
    np.minimum(pos, red_buckets.size - 1, out=pos)
    valid = red_buckets[pos] == buckets
    counts = np.where(valid, block.red_sizes[pos], 0)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, np.intp)
    starts = block.red_indptr[pos]
    shift = np.cumsum(counts) - counts
    idx = np.repeat(starts - shift, counts) + np.arange(total, dtype=np.intp)
    return block.bucket_rows[idx]


def _step_subcsr(
    block: ColumnarLayout, urows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bucket CSR restricted to the step's unsat rows.

    Exact for MIS purposes: the conflict graph handed to an oracle is
    restricted to the candidates anyway, so bucket mates that are not
    unsat never matter.  Used when few rows are unsat, where rebuilding
    this small structure is far cheaper than reducing over the whole
    block's membership every Luby iteration.
    """
    plen = block.path_len[urows]
    mem_buckets = np.concatenate(
        [
            _csr_gather(block.path_cols, block.path_indptr, urows, plen),
            block.n_edges + block.dcol[urows],
        ]
    )
    # Path part then demand part: bucket id ranges are disjoint and each
    # part lists rows ascending, so the stable argsort keeps rows
    # ascending within every bucket.
    mem_rows = np.concatenate([np.repeat(urows, plen), urows])
    order = np.argsort(mem_buckets, kind="stable")
    _, indptr, sizes = _segment_csr(mem_buckets[order])
    return mem_rows[order], indptr, sizes


#: Below this active fraction a step's MIS runs on the unsat-restricted
#: sub-CSR instead of the block-wide segments.
_SUBCSR_FRACTION = 4


def _columnar_greedy(
    m: int,
    nb_of_row: np.ndarray,
    br: np.ndarray,
    indptr: np.ndarray,
    sizes: np.ndarray,
    unsat: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Lowest-id MIS over the unsat rows; equals :func:`greedy_mis`.

    Round-based local-minima peeling computes the lexicographically
    first MIS -- the same set the sequential lowest-id sweep picks --
    without materializing adjacency: a row joins when it is the minimum
    active row of *every* bucket it belongs to, then joined rows retire
    together with all their bucket mates.  The value buffers are one
    element longer than the membership list and hold a neutral trailing
    pad (the last segment's ``reduceat`` slice runs to the buffer end).
    """
    bnnz = br.size
    indices = indptr[:-1]
    gmin = np.full(bnnz + 1, m, np.intp)
    gbool = np.zeros(bnnz + 1, np.bool_)
    active = unsat.copy()
    chosen = np.zeros(m, np.bool_)
    while active.any():
        gmin[:-1] = np.where(active[br], br, m)
        bmin = np.minimum.reduceat(gmin, indices)
        counts = np.bincount(bmin[bmin < m], minlength=m)
        joined = active & (counts == nb_of_row)
        gbool[:-1] = joined[br]
        bj = np.logical_or.reduceat(gbool, indices)
        hit = np.repeat(bj, sizes)
        active[br[hit]] = False
        chosen |= joined
    return chosen, 1


def _columnar_luby(
    m: int,
    nb_of_row: np.ndarray,
    br: np.ndarray,
    indptr: np.ndarray,
    sizes: np.ndarray,
    unsat: np.ndarray,
    draw,
) -> Tuple[np.ndarray, int]:
    """Luby's MIS over the unsat rows; equals the dict ``_luby_rounds``.

    *draw(active_rows, iteration)* returns one priority per active row,
    in ascending row order -- the dict engine's ``sorted(active)`` draw
    order.  Per iteration a row joins when its ``(priority, id)`` key is
    the strict lexicographic minimum among the active rows of every one
    of its buckets (keys are distinct because ids are), which is exactly
    the all-active-neighbors comparison of the dict loop; joined rows
    retire with their active bucket mates.
    """
    bnnz = br.size
    indices = indptr[:-1]
    gmin = np.full(bnnz + 1, m, np.intp)
    gpri = np.full(bnnz + 1, np.inf, np.float64)
    gbool = np.zeros(bnnz + 1, np.bool_)
    pri = np.full(m, np.inf, np.float64)
    active = unsat.copy()
    chosen = np.zeros(m, np.bool_)
    iterations = 0
    while active.any():
        iterations += 1
        act_rows = np.flatnonzero(active)
        pri[act_rows] = draw(act_rows, iterations)
        mask = active[br]
        gpri[:-1] = np.where(mask, pri[br], np.inf)
        bpri = np.minimum.reduceat(gpri, indices)
        tied = mask & (pri[br] == np.repeat(bpri, sizes))
        gmin[:-1] = np.where(tied, br, m)
        brmin = np.minimum.reduceat(gmin, indices)
        counts = np.bincount(brmin[brmin < m], minlength=m)
        joined = active & (counts == nb_of_row)
        gbool[:-1] = joined[br]
        bj = np.logical_or.reduceat(gbool, indices)
        hit = np.repeat(bj, sizes)
        active[br[hit]] = False
        chosen |= joined
    return chosen, iterations * ROUNDS_PER_LUBY_ITERATION


def _custom_oracle_step(
    block: ColumnarLayout,
    unsat: np.ndarray,
    mis_oracle: MISOracle,
    context: Tuple[int, int, int],
) -> Tuple[np.ndarray, int]:
    """Compatibility path for third-party oracles: rebuild the dict view.

    The active-restricted adjacency handed over is content-identical to
    the incremental engine's shrunk ``active_adj`` at the same step
    (neighbors-of-unsat intersected with unsat), so a deterministic
    custom oracle sees exactly the inputs it would see there.
    """
    unsat_rows = np.flatnonzero(unsat)
    row_of = {int(block.ids[r]): int(r) for r in unsat_rows}
    candidates = [block.instances[r] for r in unsat_rows]
    adjacency = {}
    for r in unsat_rows:
        buckets = np.concatenate(
            [
                block.path_cols[block.path_indptr[r] : block.path_indptr[r + 1]],
                [block.n_edges + block.dcol[r]],
            ]
        )
        mates = _bucket_gather(block, buckets)
        nbrs = {
            int(block.ids[u]) for u in mates[unsat[mates]]
        }
        nbrs.discard(int(block.ids[r]))
        adjacency[int(block.ids[r])] = nbrs
    mis_ids, rounds = mis_oracle(candidates, adjacency, context)
    chosen = np.zeros(block.n_rows, np.bool_)
    for i in mis_ids:
        chosen[row_of[i]] = True
    return chosen, rounds


def _lhs_all(block: ColumnarLayout, alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """LHS of every row, with :meth:`DualState.lhs`'s exact float order.

    A sequential position loop over the padded path columns: position k
    adds each row's k-th path-edge beta (or the sentinel's +0.0, which
    is bitwise harmless on the non-negative partial sums).  Pairwise
    reductions (``np.add.reduceat``) would change the summation tree.
    """
    bsum = np.zeros(block.n_rows, np.float64)
    for k in range(block.path_pad.shape[0]):
        bsum += beta[block.path_pad[k]]
    return alpha[block.dcol] + block.coeff * bsum


def _lhs_dirty(
    block: ColumnarLayout,
    dirty: np.ndarray,
    alpha: np.ndarray,
    beta: np.ndarray,
    lhs: np.ndarray,
) -> None:
    """Recompute ``lhs[dirty]`` in place (same sequential order)."""
    k_max = int(block.path_len[dirty].max())
    bsum = np.zeros(dirty.size, np.float64)
    for k in range(k_max):
        bsum += beta[block.path_pad[k, dirty]]
    lhs[dirty] = alpha[block.dcol[dirty]] + block.coeff[dirty] * bsum


def run_epoch_columnar(
    block: ColumnarLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    events: List[RaiseEvent],
    stack: List[List[DemandInstance]],
    counters: PhaseCounters,
    order: int,
    primed_alpha: Mapping,
    primed_beta: Mapping,
    alpha_arr: Optional[np.ndarray] = None,
    beta_arr: Optional[np.ndarray] = None,
) -> Tuple[int, Optional[DualState], Optional[tuple]]:
    """Run one epoch on the columnar block.

    Returns ``(next order, shadow, commit)``: exactly one of *shadow*
    (custom rules/oracles ran sequentially on a real
    :class:`DualState`) and *commit* (the fast path's
    ``(alpha_cols, beta_cols, alpha_arr, beta_arr)`` -- the touched
    columns in first-write order plus the final value arrays) is not
    ``None``; either is consumed by :func:`commit_epoch`.

    ``primed_alpha`` / ``primed_beta`` are the dual values visible to
    the epoch (the serial runner passes the master dicts themselves;
    executor jobs pass their primed slices).  When the caller already
    holds the primed values as arrays over the block's column spaces --
    the serial fast path's persistent phase-wide arrays -- it passes
    them as ``alpha_arr`` / ``beta_arr`` and the dict-to-array priming
    is skipped outright; the arrays are updated in place.  Nothing is
    ever written back to the dicts here.
    """
    epoch = block.epoch
    m = block.n_rows
    instances = block.instances
    oracle_kind = _oracle_kind(mis_oracle)
    use_shadow = (
        block.rule_kind == "custom"
        or oracle_kind == "custom"
        or not block.pi_within_path
    )

    shadow: Optional[DualState] = None
    alpha = beta = None
    if use_shadow:
        shadow = DualState(use_height_rule=raise_rule.use_height_rule)
        shadow.alpha.update(primed_alpha)
        shadow.beta.update(primed_beta)
        lhs = np.fromiter(
            (shadow.lhs(d) for d in instances), np.float64, m
        )
    else:
        if alpha_arr is None:
            n_dem = len(block.demand_ids)
            if primed_alpha:
                alpha = np.fromiter(
                    (primed_alpha.get(a, 0.0) for a in block.demand_ids),
                    np.float64,
                    n_dem,
                )
            else:
                alpha = np.zeros(n_dem, np.float64)
            beta = np.zeros(block.n_edges, np.float64)
            if primed_beta:
                edge_keys = block.edge_keys
                get = primed_beta.get
                for c in range(1, block.n_edges):
                    v = get(edge_keys[c])
                    if v is not None:
                        beta[c] = v
        else:
            alpha, beta = alpha_arr, beta_arr
        lhs = _lhs_all(block, alpha, beta)
        alpha_touched = np.zeros(len(block.demand_ids), np.bool_)
        beta_touched = np.zeros(block.n_edges, np.bool_)
        alpha_touch: List[np.ndarray] = []
        beta_touch: List[np.ndarray] = []
    counters.satisfaction_checks += m

    if oracle_kind == "luby":
        rng = mis_oracle.substream(epoch)

        def draw(act_rows, iteration):
            # iter(rng.random, 2.0) is an endless C-level call iterator
            # (random() never returns the 2.0 sentinel); fromiter's count
            # stops it after exactly one draw per active row.
            return np.fromiter(iter(rng.random, 2.0), np.float64, act_rows.size)

    profit = block.profit
    for stage_no, tau in enumerate(thresholds, start=1):
        counters.stages += 1
        unsat = lhs < tau * profit - EPS
        if not unsat.any():
            continue
        counters.adjacency_touches += int(np.count_nonzero(unsat))
        step = 0
        while unsat.any():
            step += 1
            if step > m:
                raise stall_error(epoch, stage_no, m)
            context = (epoch, stage_no, step)
            if oracle_kind == "custom":
                chosen_mask, rounds = _custom_oracle_step(
                    block, unsat, mis_oracle, context
                )
            else:
                n_unsat = int(np.count_nonzero(unsat))
                if n_unsat * _SUBCSR_FRACTION < m:
                    br, indptr, sizes = _step_subcsr(
                        block, np.flatnonzero(unsat)
                    )
                else:
                    br = block.bucket_rows
                    indptr = block.red_indptr
                    sizes = block.red_sizes
                if oracle_kind == "greedy":
                    chosen_mask, rounds = _columnar_greedy(
                        m, block.nb_of_row, br, indptr, sizes, unsat
                    )
                elif oracle_kind == "luby":
                    chosen_mask, rounds = _columnar_luby(
                        m, block.nb_of_row, br, indptr, sizes, unsat, draw
                    )
                else:  # hash
                    seed = mis_oracle.seed
                    ikeys = block.ikeys()

                    def hdraw(act_rows, iteration, _ctx=context):
                        return np.fromiter(
                            (
                                hashed_priority(seed, ikeys[r], _ctx, iteration)
                                for r in act_rows.tolist()
                            ),
                            np.float64,
                            act_rows.size,
                        )

                    chosen_mask, rounds = _columnar_luby(
                        m, block.nb_of_row, br, indptr, sizes, unsat, hdraw
                    )
            counters.mis_rounds += rounds
            chosen_rows = np.flatnonzero(chosen_mask)
            chosen_list = chosen_rows.tolist()

            if use_shadow:
                for r in chosen_list:
                    d = instances[r]
                    delta = raise_rule.apply(shadow, d, block.pi_tuples[r])
                    events.append(
                        RaiseEvent(
                            order=order,
                            instance=d,
                            delta=delta,
                            critical_edges=block.pi_tuples[r],
                            step_tuple=context,
                        )
                    )
                    order += 1
                    counters.raises += 1
            else:
                slack = profit[chosen_rows] - lhs[chosen_rows]
                pos = slack > EPS
                denom = block.denom[chosen_rows]
                if np.any(pos & (denom == 0.0)):
                    raise ValueError(
                        "cannot raise with no alpha and no critical edges"
                    )
                delta_arr = np.zeros(chosen_rows.size, np.float64)
                np.divide(slack, denom, out=delta_arr, where=pos)
                pos_rows = chosen_rows[pos]
                if pos_rows.size:
                    pos_delta = delta_arr[pos]
                    if block.use_alpha:
                        # MIS members have pairwise-distinct demands, so
                        # the fancy-index add hits each alpha column once;
                        # pos_rows ascending = the incremental engine's
                        # ascending-id write order (first-touch tracking
                        # below relies on it).
                        acols = block.dcol[pos_rows]
                        fresh = ~alpha_touched[acols]
                        if fresh.any():
                            new_a = acols[fresh]
                            alpha_touched[new_a] = True
                            alpha_touch.append(new_a)
                        alpha[acols] += pos_delta
                    inc = block.incfac[pos_rows] * pos_delta
                    pi_counts = (
                        block.pi_indptr[pos_rows + 1] - block.pi_indptr[pos_rows]
                    )
                    cols = _csr_gather(
                        block.pi_cols, block.pi_indptr, pos_rows, pi_counts
                    )
                    fresh = ~beta_touched[cols]
                    if fresh.any():
                        new_b = cols[fresh]
                        beta_touched[new_b] = True
                        beta_touch.append(new_b)
                    # Disjoint paths + within-row-distinct pi columns
                    # (checked at build) make every scatter target unique.
                    beta[cols] += np.repeat(inc, pi_counts)
                k = len(chosen_list)
                getrow = instances.__getitem__
                events.extend(
                    map(
                        RaiseEvent,
                        range(order, order + k),
                        map(getrow, chosen_list),
                        delta_arr.tolist(),
                        map(block.pi_tuples.__getitem__, chosen_list),
                        repeat(context),
                    )
                )
                order += k
                counters.raises += k
            stack.append(list(map(instances.__getitem__, chosen_list)))
            counters.steps += 1

            # Dirty set: rows sharing a demand with a chosen row, or whose
            # path contains one of its critical edges -- the bucket form
            # of InstanceIndex.affected_by, intersected with members.
            pi_counts = block.pi_indptr[chosen_rows + 1] - block.pi_indptr[chosen_rows]
            dirty_buckets = np.concatenate(
                [
                    _csr_gather(block.pi_cols, block.pi_indptr, chosen_rows, pi_counts),
                    block.n_edges + block.dcol[chosen_rows],
                ]
            )
            dirty = np.unique(_bucket_gather(block, dirty_buckets))
            counters.satisfaction_checks += int(dirty.size)
            if dirty.size:
                if use_shadow:
                    for r in dirty:
                        lhs[r] = shadow.lhs(instances[r])
                else:
                    _lhs_dirty(block, dirty, alpha, beta, lhs)
                sat = lhs[dirty] >= tau * profit[dirty] - EPS
                retire = dirty[sat & unsat[dirty]]
                counters.adjacency_touches += int(retire.size)
                unsat[retire] = False
        counters.max_steps_per_stage = max(counters.max_steps_per_stage, step)
    if use_shadow:
        return order, shadow, None
    acols = (
        np.concatenate(alpha_touch) if alpha_touch else np.empty(0, np.intp)
    )
    bcols = np.concatenate(beta_touch) if beta_touch else np.empty(0, np.intp)
    return order, None, (acols, bcols, alpha, beta)


def _csr_gather(
    data: np.ndarray, indptr: np.ndarray, rows: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenate ``data[indptr[r]:indptr[r+1]]`` for each row in *rows*."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, np.intp)
    starts = indptr[rows]
    shift = np.cumsum(counts) - counts
    idx = np.repeat(starts - shift, counts) + np.arange(total, dtype=np.intp)
    return data[idx]


def commit_epoch(
    dual: DualState,
    block: ColumnarLayout,
    shadow: Optional[DualState],
    commit: Optional[tuple],
    raise_rule: RaiseRule,
) -> None:
    """Write one columnar epoch's dual effects into *dual*.

    The fast path assigns each touched key its final array value, in
    first-write chronological order.  That reproduces the incremental
    engine's dicts bit-for-bit: the arrays accumulated the epoch's
    raises with the exact float schedule :meth:`RaiseRule.apply` would
    have used on the dicts (same adds, same order), so the final values
    are bitwise identical, and python dicts keep existing keys in place
    on assignment while appending new keys -- first-write order is
    therefore the whole insertion order.  Shadow epochs (custom rules
    or oracles) instead copy the shadow state's writes over, in shadow
    insertion order -- again the chronological write order -- skipping
    unchanged primed keys.
    """
    if shadow is not None:
        for k, v in shadow.alpha.items():
            if k not in dual.alpha or dual.alpha[k] != v:
                dual.alpha[k] = v
        for k, v in shadow.beta.items():
            if k not in dual.beta or dual.beta[k] != v:
                dual.beta[k] = v
        return
    acols, bcols, alpha_arr, beta_arr = commit
    if raise_rule.use_alpha and acols.size:
        dual.alpha.update(
            zip(
                map(block.demand_ids.__getitem__, acols.tolist()),
                alpha_arr[acols].tolist(),
            )
        )
    if bcols.size:
        dual.beta.update(
            zip(
                map(block.edge_keys.__getitem__, bcols.tolist()),
                beta_arr[bcols].tolist(),
            )
        )


def run_columnar_job_body(job) -> "EpochOutcome":  # noqa: F821 -- see import below
    """Execute one vectorized :class:`EpochJob`; every backend's worker body.

    Mirrors :func:`~repro.core.engines.backends.run_epoch_job`: run the
    epoch over a local dual primed with the job's inherited values,
    then report only the writes.  The block rides in ``job.columnar``
    (prebuilt by the executor; rebuilt here only if a hand-rolled job
    left it empty).
    """
    from repro.core.engines.backends import EpochOutcome, dual_writes

    block = job.columnar
    if block is None:
        block = build_columnar(job.epoch, job.members, job.layout, job.raise_rule)
    events: List[RaiseEvent] = []
    stack: List[List[DemandInstance]] = []
    counters = PhaseCounters()
    _, shadow, commit = run_epoch_columnar(
        block, job.raise_rule, job.thresholds, job.mis_oracle,
        events, stack, counters, 0, job.primed_alpha, job.primed_beta,
    )
    local = DualState(use_height_rule=job.raise_rule.use_height_rule)
    local.alpha.update(job.primed_alpha)
    local.beta.update(job.primed_beta)
    commit_epoch(local, block, shadow, commit, job.raise_rule)
    return EpochOutcome(
        job.epoch, job.component, events, stack, counters,
        dual_writes(local.alpha, job.primed_alpha),
        dual_writes(local.beta, job.primed_beta),
    )


def run_first_phase_vectorized(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    conflict_adj=None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
) -> FirstPhaseArtifacts:
    """Engine entry point for ``engine="vectorized"``.

    With no executor knobs set (``workers``/``backend``/
    ``plan_granularity`` all default, no backend env override) the
    phase runs on the serial fast path: members -> per-epoch columnar
    block -> epoch kernel -> commit, with *no* epoch plan and *no*
    pairwise conflict graph ever built -- that is where the headline
    speedup over the incremental engine comes from.  Any executor knob
    routes through :class:`~repro.core.engines.parallel.ParallelEpochExecutor`
    with ``kernel="vectorized"`` instead, so wave scheduling, backends
    (including process-pool pickling of columnar blocks) and the
    component-granularity contract all behave exactly as for
    ``engine="parallel"``.  ``conflict_adj`` is accepted for signature
    compatibility; the bucket structure replaces it.
    """
    granularity = plan_granularity or "epoch"
    serial_fast_path = (
        workers is None
        and backend is None
        and granularity == "epoch"
        and resolve_backend(backend) == "thread"
    )
    if not serial_fast_path:
        from repro.core.engines.parallel import ParallelEpochExecutor

        executor = ParallelEpochExecutor(
            workers=workers, backend=backend,
            plan_granularity=plan_granularity, kernel="vectorized",
        )
        return executor.run(
            instances, layout, raise_rule, thresholds, mis_oracle,
            conflict_adj=conflict_adj,
        )
    dual = DualState(use_height_rule=raise_rule.use_height_rule)
    blocks, n_edges, n_demands = build_columnar_epochs(instances, layout, raise_rule)
    # Phase-wide dual arrays over the shared column spaces: every
    # non-shadow epoch reads and raises them in place, so no epoch ever
    # re-primes arrays from the master dicts.  A shadow epoch (custom
    # rule/oracle) bypasses them, leaving them stale -- subsequent
    # epochs then fall back to dict priming.
    alpha_arr = np.zeros(n_demands, np.float64)
    beta_arr = np.zeros(n_edges, np.float64)
    arrays_live = True
    events: List[RaiseEvent] = []
    stack: List[List[DemandInstance]] = []
    counters = PhaseCounters()
    order = 0
    for epoch in range(1, layout.n_epochs + 1):
        counters.epochs += 1
        block = blocks.get(epoch)
        if block is None:
            continue
        order, shadow, commit = run_epoch_columnar(
            block, raise_rule, thresholds, mis_oracle,
            events, stack, counters, order, dual.alpha, dual.beta,
            alpha_arr=alpha_arr if arrays_live else None,
            beta_arr=beta_arr if arrays_live else None,
        )
        commit_epoch(dual, block, shadow, commit, raise_rule)
        if shadow is not None:
            arrays_live = False
    return dual, stack, events, counters
