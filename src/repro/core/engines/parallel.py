"""The parallel first-phase engine: plan -> execute -> merge.

Executes the epoch waves of an :class:`~repro.core.plan.EpochPlan` on a
pluggable :class:`~repro.core.engines.backends.EpochExecutorBackend`
(``backend="thread"`` (default) / ``"process"`` / ``"serial"``,
``workers=`` knob) and deterministically merges the per-job artifacts
back into the sequential epoch order, so the result is **bit-identical**
to ``engine="incremental"``:

* Each job runs :func:`~repro.core.engines.incremental.run_epoch_incremental`
  -- the exact incremental loop body -- over *plan-sliced* state: the
  epoch's members, its member-restricted conflict adjacency and reverse
  index, and a local :class:`~repro.core.dual.DualState` primed with the
  master dual values its members can read (``alpha`` of member demands,
  ``beta`` on member path edges).
* Epochs in one wave share no path edge and no demand, so their dual
  reads/writes are disjoint: each job sees exactly the dual assignment
  the sequential engine would have shown it, and the per-wave merge
  (applied in epoch order) reproduces the sequential float arithmetic
  exactly.
* Events are renumbered and stacks concatenated in epoch order;
  counters are summed (``max_steps_per_stage`` maxed).  Only the
  worker-attribution fields (``wavefronts``, ``workers_used``) and the
  work meters (``satisfaction_checks``, ``adjacency_touches`` -- the
  sliced state legitimately touches fewer entries) differ from the
  incremental engine.

Determinism does not depend on scheduling: wave membership is
data-dependent only, jobs are sealed off from each other, and every
merge walks epochs in ascending order -- which is why the *same*
artifacts come back from a thread pool, a process pool, or inline
serial execution.  The bundled MIS oracles are safe to share across
epoch threads (``greedy`` and ``hash`` are stateless; ``luby`` keeps
one independent substream per epoch) and picklable for the process
backend.  A custom oracle must likewise not share mutable state across
epochs, and must pickle if the process backend is used.

Component granularity (relaxed)
-------------------------------

``plan_granularity="component"`` (opt-in) splits each epoch's
*disconnected conflict components* into separate jobs, exposing
parallelism inside an epoch -- the regime strict epoch waves cannot
touch.  ``plan_granularity="auto"`` makes that opt-in data-driven: the
plan's :meth:`~repro.core.plan.EpochPlan.recommend_split` heuristic
splits only when enough member mass lies outside the epochs' largest
components to predict a win, and otherwise runs the strict epoch mode
(bit-identical artifacts included).  Components share no demand and no path edge, so every job still
raises over a sealed dual slice and the merged output remains a valid
first phase: feasible second-phase input, tight raises, certified
``val/lambda >= p(Opt)``.  What changes is *accounting*: per-component
stage/step loops run separately, so ``stages``/``steps``/``mis_rounds``
(and the Luby draw sequences) differ from the strict engines -- the
caller waives strict counter equality by opting in.  For the
order-independent oracles (``greedy``, ``hash``) the multiset of raise
events is conserved exactly.  Each job gets its own pickled *clone* of
the MIS oracle so concurrent components of one epoch never share
mutable oracle state.
"""
from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent, RaiseRule
from repro.core.engines.artifacts import (
    FirstPhaseArtifacts,
    InstanceLayout,
    PhaseCounters,
)
from repro.core.engines.backends import (
    MAX_DEFAULT_WORKERS,
    EpochExecutorBackend,
    EpochJob,
    EpochOutcome,
    default_workers,
    make_backend,
    resolve_backend,
    usable_cpu_count,
)
from repro.core.plan import EpochPlan, validate_granularity
from repro.core.types import DemandId, EdgeKey
from repro.distributed.conflict import ConflictAdjacency, build_instance_index
from repro.distributed.mis import MISOracle
from repro.obs.metrics import default_registry

__all__ = [
    "MAX_DEFAULT_WORKERS",
    "ParallelEpochExecutor",
    "default_workers",
    "run_first_phase_parallel",
    "usable_cpu_count",
]


def _clone_oracle(mis_oracle: MISOracle) -> MISOracle:
    """A private copy of the oracle via a pickle round-trip.

    Component mode runs several jobs of the *same* epoch concurrently;
    a shared stateful oracle (Luby's per-epoch RNG) would interleave
    draws nondeterministically, so each job gets its own clone -- the
    same sealing the process backend gets for free from pickling.
    """
    try:
        return pickle.loads(pickle.dumps(mis_oracle))
    except Exception as exc:
        raise ValueError(
            "plan_granularity='component' requires a picklable MIS oracle "
            "(each component job runs over a private clone); "
            f"could not pickle {mis_oracle!r}"
        ) from exc


class ParallelEpochExecutor:
    """Runs a first phase as planned epoch waves on an execution backend."""

    def __init__(
        self,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        plan_granularity: Optional[str] = None,
        kernel: str = "incremental",
    ) -> None:
        if kernel not in ("incremental", "vectorized"):
            raise ValueError(
                f"unknown epoch kernel {kernel!r}; "
                "choose 'incremental' or 'vectorized'"
            )
        self.kernel = kernel
        env_resolved = backend is None
        backend_name = resolve_backend(backend)
        if workers is None:
            workers = 1 if backend_name == "serial" else default_workers()
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ValueError(f"workers must be a positive integer, got {workers!r}")
        if backend_name == "serial" and workers != 1:
            if env_resolved:
                # The caller asked for pooled workers and only the
                # REPRO_BACKEND override said serial: honor the override
                # (its whole point is running unmodified callers under a
                # different backend) by coercing, not crashing.
                workers = 1
            else:
                raise ValueError(
                    f"backend='serial' runs one job at a time; workers={workers} "
                    "would misattribute the schedule (use the thread or process "
                    "backend for pooled execution)"
                )
        self.workers = workers
        self.plan_granularity = validate_granularity(plan_granularity or "epoch")
        self.backend: EpochExecutorBackend = make_backend(backend_name, workers)

    @property
    def backend_name(self) -> str:
        """The resolved execution backend ('thread', 'process' or 'serial')."""
        return self.backend.name

    def _resolve_split(self, plan: EpochPlan) -> bool:
        """Whether this run splits epochs into component jobs.

        ``"component"`` always splits, ``"epoch"`` never; ``"auto"``
        asks the plan (:meth:`~repro.core.plan.EpochPlan.recommend_split`)
        whether the component structure predicts a win -- splitting
        only then, so an auto run on a split-hostile plan stays
        bit-identical to the strict engines while a split-friendly one
        opts into the component mode's relaxed counter contract.
        """
        if self.plan_granularity == "component":
            return True
        if self.plan_granularity == "auto":
            return plan.recommend_split()
        return False

    def run(
        self,
        instances: Sequence[DemandInstance],
        layout: InstanceLayout,
        raise_rule: RaiseRule,
        thresholds: Sequence[float],
        mis_oracle: MISOracle,
        conflict_adj: Optional[ConflictAdjacency] = None,
        plan: Optional[EpochPlan] = None,
    ) -> FirstPhaseArtifacts:
        """Execute the first phase; artifacts match ``engine="incremental"``
        (under the default epoch granularity)."""
        if plan is None:
            plan = EpochPlan.build(
                instances, layout, conflict_adj, granularity=self.plan_granularity
            )
        split = self._resolve_split(plan)
        # Component jobs need sealed per-job oracles; the process backend
        # already clones every wire job's oracle in _prepare, so cloning
        # here too would just pickle each oracle twice.
        clone_here = split and self.backend.name != "process"
        thresholds = tuple(thresholds)
        vectorized = self.kernel == "vectorized"
        if vectorized:
            # Columnar jobs never consult pairwise adjacency or the
            # reverse index -- the block's bucket structure replaces
            # both -- so ship empty ones instead of paying to pickle
            # the plan slices to process workers.
            from repro.core.engines.columnar import build_columnar

            empty_index = build_instance_index(())
        master = DualState(use_height_rule=raise_rule.use_height_rule)
        outcomes: Dict[Tuple[int, int], EpochOutcome] = {}
        for wave in plan.waves:
            jobs: List[EpochJob] = []
            for epoch in wave:
                if not plan.members.get(epoch):
                    continue
                primed_alpha, primed_beta = self._primed(master, plan, epoch)
                if split:
                    for c, (members, adjacency, index) in enumerate(
                        plan.component_slices(epoch)
                    ):
                        if vectorized:
                            index, adjacency = empty_index, {}
                        jobs.append(
                            EpochJob(
                                epoch, c, members, index, adjacency, layout,
                                raise_rule, thresholds,
                                _clone_oracle(mis_oracle) if clone_here
                                else mis_oracle,
                                primed_alpha, primed_beta,
                                kernel=self.kernel,
                                columnar=build_columnar(
                                    epoch, members, layout, raise_rule
                                ) if vectorized else None,
                            )
                        )
                else:
                    members = plan.members[epoch]
                    jobs.append(
                        EpochJob(
                            epoch, 0, members,
                            empty_index if vectorized else plan.index[epoch],
                            {} if vectorized else plan.adjacency[epoch],
                            layout, raise_rule,
                            thresholds, mis_oracle, primed_alpha, primed_beta,
                            kernel=self.kernel,
                            columnar=build_columnar(
                                epoch, members, layout, raise_rule
                            ) if vectorized else None,
                        )
                    )
            if not jobs:
                continue
            # Always-on wave telemetry into the process-default
            # registry: one gauge write per wave (see backends'
            # _record_wave for the pool-side counterpart).
            default_registry().gauge(
                "repro_wave_width", backend=self.backend.name
            ).set(len(jobs))
            for out in self.backend.run_wave(jobs):
                outcomes[out.sort_key] = out
            # The master dual is frozen while a wave runs; merge the
            # wave's (disjoint) writes afterwards, in epoch order.
            for key in sorted((job.epoch, job.component) for job in jobs):
                master.alpha.update(outcomes[key].alpha_writes)
                master.beta.update(outcomes[key].beta_writes)
        return self._merge(plan, layout, master, outcomes)

    @staticmethod
    def _primed(
        master: DualState, plan: EpochPlan, epoch: int
    ) -> Tuple[Dict[DemandId, float], Dict[EdgeKey, float]]:
        """Master dual values *epoch*'s members can read.

        Only keys *shared* with other epochs can carry inherited values
        -- everything else the epoch touches is private to it -- so the
        scan is over the plan's (typically tiny) shared-key sets rather
        than all member path edges.  The first wave always sees an empty
        master and skips even that.  Component jobs of one epoch share
        this priming: a primed key a component never touches is filtered
        from its writes as unchanged.
        """
        primed_alpha: Dict[DemandId, float] = {}
        primed_beta: Dict[EdgeKey, float] = {}
        if master.alpha or master.beta:
            for a in plan.shared_demands[epoch]:
                if a in master.alpha:
                    primed_alpha[a] = master.alpha[a]
            for e in plan.shared_edges[epoch]:
                if e in master.beta:
                    primed_beta[e] = master.beta[e]
        return primed_alpha, primed_beta

    def _merge(
        self,
        plan: EpochPlan,
        layout: InstanceLayout,
        master: DualState,
        outcomes: Dict[Tuple[int, int], EpochOutcome],
    ) -> FirstPhaseArtifacts:
        """Reassemble artifacts in sequential (epoch, component) order.

        The master dual accumulated its writes in *wave* order, but dict
        iteration order is insertion order and ``DualState.value()`` sums
        the values in that order -- float addition is not associative, so
        the sequential engines' epoch-major key order must be reproduced
        exactly.  Replaying the per-job writes into a fresh dual in
        ascending epoch order recreates it: a key keeps the position of
        the first epoch that wrote it (later writes only overwrite the
        value), which is precisely when the incremental engine would have
        created it.
        """
        final = DualState(use_height_rule=master.use_height_rule)
        for key in sorted(outcomes):
            final.alpha.update(outcomes[key].alpha_writes)
            final.beta.update(outcomes[key].beta_writes)
        events: List[RaiseEvent] = []
        stack: List[List[DemandInstance]] = []
        counters = PhaseCounters(
            epochs=layout.n_epochs,
            wavefronts=plan.n_waves,
            workers_used=self.backend.workers,
        )
        order = 0
        for key in sorted(outcomes):
            out = outcomes[key]
            for ev in out.events:
                # The event objects are exclusively ours (created by this
                # run's epoch jobs), so renumbering them in place is safe
                # and much cheaper than dataclasses.replace on every event.
                # The first epoch's events are already numbered from 0.
                if ev.order != order:
                    object.__setattr__(ev, "order", order)
                events.append(ev)
                order += 1
            stack.extend(out.stack)
            c = out.counters
            counters.stages += c.stages
            counters.steps += c.steps
            counters.raises += c.raises
            counters.mis_rounds += c.mis_rounds
            counters.satisfaction_checks += c.satisfaction_checks
            counters.adjacency_touches += c.adjacency_touches
            counters.max_steps_per_stage = max(
                counters.max_steps_per_stage, c.max_steps_per_stage
            )
        return final, stack, events, counters


def run_first_phase_parallel(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    conflict_adj: Optional[ConflictAdjacency] = None,
    workers: Optional[int] = None,
    plan: Optional[EpochPlan] = None,
    backend: Optional[str] = None,
    plan_granularity: Optional[str] = None,
) -> FirstPhaseArtifacts:
    """Engine entry point matching the reference/incremental signatures."""
    executor = ParallelEpochExecutor(
        workers=workers, backend=backend, plan_granularity=plan_granularity
    )
    return executor.run(
        instances, layout, raise_rule, thresholds, mis_oracle,
        conflict_adj=conflict_adj, plan=plan,
    )
