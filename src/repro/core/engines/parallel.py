"""The parallel first-phase engine: plan -> execute -> merge.

Executes the epoch waves of an :class:`~repro.core.plan.EpochPlan`
concurrently (a ``concurrent.futures`` thread pool, ``workers=`` knob)
and deterministically merges the per-epoch artifacts back into the
sequential epoch order, so the result is **bit-identical** to
``engine="incremental"``:

* Each epoch job runs :func:`~repro.core.engines.incremental.run_epoch_incremental`
  -- the exact incremental loop body -- over *plan-sliced* state: the
  epoch's members, its member-restricted conflict adjacency and reverse
  index, and a local :class:`~repro.core.dual.DualState` primed with the
  master dual values its members can read (``alpha`` of member demands,
  ``beta`` on member path edges).
* Epochs in one wave share no path edge and no demand, so their dual
  reads/writes are disjoint: each job sees exactly the dual assignment
  the sequential engine would have shown it, and the per-wave merge
  (applied in epoch order) reproduces the sequential float arithmetic
  exactly.
* Events are renumbered and stacks concatenated in epoch order;
  counters are summed (``max_steps_per_stage`` maxed).  Only the
  worker-attribution fields (``wavefronts``, ``workers_used``) and the
  work meters (``satisfaction_checks``, ``adjacency_touches`` -- the
  sliced state legitimately touches fewer entries) differ from the
  incremental engine.

Determinism does not depend on thread scheduling: wave membership is
data-dependent only, per-epoch jobs are sealed off from each other, and
every merge walks epochs in ascending order.  The bundled MIS oracles
are safe to share across epoch threads (``greedy`` and ``hash`` are
stateless; ``luby`` keeps one independent substream per epoch).  A
custom oracle must likewise not share mutable state across epochs.
"""
from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent, RaiseRule
from repro.core.engines.artifacts import (
    FirstPhaseArtifacts,
    InstanceLayout,
    PhaseCounters,
)
from repro.core.engines.incremental import run_epoch_incremental
from repro.core.plan import EpochPlan
from repro.core.types import DemandId, EdgeKey
from repro.distributed.conflict import ConflictAdjacency
from repro.distributed.mis import MISOracle

#: Default worker-pool size: the machine's cores, capped (epoch waves are
#: rarely wider than this, and thread ramp-up isn't free).
MAX_DEFAULT_WORKERS = 8


def default_workers() -> int:
    """The ``workers=None`` resolution used by the parallel engine."""
    return max(1, min(MAX_DEFAULT_WORKERS, os.cpu_count() or 1))


#: Process-wide executor cache, one pool per worker count.  Thread
#: start-up costs a few hundred microseconds -- comparable to a whole
#: small first phase -- so pools are kept warm across runs.  Pools are
#: never shut down explicitly; ``concurrent.futures`` wakes idle workers
#: at interpreter exit.
_POOLS: Dict[int, ThreadPoolExecutor] = {}


def _shared_pool(workers: int) -> ThreadPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS.setdefault(
            workers,
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-epoch"
            ),
        )
    return pool


@dataclass
class _EpochOutcome:
    """Everything one epoch job produced, pending the ordered merge."""

    epoch: int
    events: List[RaiseEvent]
    stack: List[List[DemandInstance]]
    counters: PhaseCounters
    alpha_writes: Dict[DemandId, float]
    beta_writes: Dict[EdgeKey, float]


class ParallelEpochExecutor:
    """Runs a first phase as planned epoch waves over a thread pool."""

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = default_workers()
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ValueError(f"workers must be a positive integer, got {workers!r}")
        self.workers = workers

    def run(
        self,
        instances: Sequence[DemandInstance],
        layout: InstanceLayout,
        raise_rule: RaiseRule,
        thresholds: Sequence[float],
        mis_oracle: MISOracle,
        conflict_adj: Optional[ConflictAdjacency] = None,
        plan: Optional[EpochPlan] = None,
    ) -> FirstPhaseArtifacts:
        """Execute the first phase; artifacts match ``engine="incremental"``."""
        if plan is None:
            plan = EpochPlan.build(instances, layout, conflict_adj)
        master = DualState(use_height_rule=raise_rule.use_height_rule)
        outcomes: Dict[int, _EpochOutcome] = {}

        def job(epochs: Sequence[int]) -> List[_EpochOutcome]:
            return [
                self._run_epoch(
                    epoch, plan, master, layout, raise_rule, thresholds, mis_oracle
                )
                for epoch in epochs
            ]

        for wave in plan.waves:
            runnable = [k for k in wave if plan.members.get(k)]
            if len(runnable) > 1 and self.workers > 1:
                # Chunk the wave into at most `workers` jobs; the calling
                # thread executes the first chunk itself (caller-runs), so
                # a wave costs at most workers-1 future dispatches.
                n_chunks = min(self.workers, len(runnable))
                chunks = [runnable[c::n_chunks] for c in range(n_chunks)]
                pool = _shared_pool(self.workers)
                futures = [pool.submit(job, chunk) for chunk in chunks[1:]]
                done = job(chunks[0])
                for fut in futures:
                    done.extend(fut.result())
                for out in done:
                    outcomes[out.epoch] = out
            else:
                for out in job(runnable):
                    outcomes[out.epoch] = out
            # The master dual is frozen while a wave runs; merge the
            # wave's (disjoint) writes afterwards, in epoch order.
            for k in sorted(runnable):
                master.alpha.update(outcomes[k].alpha_writes)
                master.beta.update(outcomes[k].beta_writes)
        return self._merge(plan, layout, master, outcomes)

    def _run_epoch(
        self,
        epoch: int,
        plan: EpochPlan,
        master: DualState,
        layout: InstanceLayout,
        raise_rule: RaiseRule,
        thresholds: Sequence[float],
        mis_oracle: MISOracle,
    ) -> _EpochOutcome:
        """Run one epoch over sealed, plan-sliced state."""
        members = plan.members[epoch]
        by_id = {d.instance_id: d for d in members}
        local = DualState(use_height_rule=raise_rule.use_height_rule)
        # Prime the local dual with every master value the epoch can
        # read.  Only keys *shared* with other epochs can carry inherited
        # values -- everything else the epoch touches is private to it --
        # so the scan is over the plan's (typically tiny) shared-key sets
        # rather than all member path edges.  The first wave always sees
        # an empty master and skips even that.
        primed_alpha: Dict[DemandId, float] = {}
        primed_beta: Dict[EdgeKey, float] = {}
        if master.alpha or master.beta:
            for a in plan.shared_demands[epoch]:
                if a in master.alpha:
                    primed_alpha[a] = local.alpha[a] = master.alpha[a]
            for e in plan.shared_edges[epoch]:
                if e in master.beta:
                    primed_beta[e] = local.beta[e] = master.beta[e]
        events: List[RaiseEvent] = []
        stack: List[List[DemandInstance]] = []
        counters = PhaseCounters()
        run_epoch_incremental(
            epoch, members, by_id, local, plan.index[epoch],
            plan.adjacency[epoch], layout, raise_rule, thresholds,
            mis_oracle, events, stack, counters, order=0,
        )
        if primed_alpha:
            alpha_writes = {
                k: v for k, v in local.alpha.items()
                if k not in primed_alpha or primed_alpha[k] != v
            }
        else:
            alpha_writes = local.alpha
        if primed_beta:
            beta_writes = {
                k: v for k, v in local.beta.items()
                if k not in primed_beta or primed_beta[k] != v
            }
        else:
            beta_writes = local.beta
        return _EpochOutcome(epoch, events, stack, counters, alpha_writes, beta_writes)

    def _merge(
        self,
        plan: EpochPlan,
        layout: InstanceLayout,
        master: DualState,
        outcomes: Dict[int, _EpochOutcome],
    ) -> FirstPhaseArtifacts:
        """Reassemble artifacts in sequential epoch order.

        The master dual accumulated its writes in *wave* order, but dict
        iteration order is insertion order and ``DualState.value()`` sums
        the values in that order -- float addition is not associative, so
        the sequential engines' epoch-major key order must be reproduced
        exactly.  Replaying the per-epoch writes into a fresh dual in
        ascending epoch order recreates it: a key keeps the position of
        the first epoch that wrote it (later writes only overwrite the
        value), which is precisely when the incremental engine would have
        created it.
        """
        final = DualState(use_height_rule=master.use_height_rule)
        for epoch in sorted(outcomes):
            final.alpha.update(outcomes[epoch].alpha_writes)
            final.beta.update(outcomes[epoch].beta_writes)
        events: List[RaiseEvent] = []
        stack: List[List[DemandInstance]] = []
        counters = PhaseCounters(
            epochs=layout.n_epochs,
            wavefronts=plan.n_waves,
            workers_used=self.workers,
        )
        order = 0
        for epoch in sorted(outcomes):
            out = outcomes[epoch]
            for ev in out.events:
                # The event objects are exclusively ours (created by this
                # run's epoch jobs), so renumbering them in place is safe
                # and much cheaper than dataclasses.replace on every event.
                # The first epoch's events are already numbered from 0.
                if ev.order != order:
                    object.__setattr__(ev, "order", order)
                events.append(ev)
                order += 1
            stack.extend(out.stack)
            c = out.counters
            counters.stages += c.stages
            counters.steps += c.steps
            counters.raises += c.raises
            counters.mis_rounds += c.mis_rounds
            counters.satisfaction_checks += c.satisfaction_checks
            counters.adjacency_touches += c.adjacency_touches
            counters.max_steps_per_stage = max(
                counters.max_steps_per_stage, c.max_steps_per_stage
            )
        return final, stack, events, counters


def run_first_phase_parallel(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    conflict_adj: Optional[ConflictAdjacency] = None,
    workers: Optional[int] = None,
    plan: Optional[EpochPlan] = None,
) -> FirstPhaseArtifacts:
    """Engine entry point matching the reference/incremental signatures."""
    executor = ParallelEpochExecutor(workers=workers)
    return executor.run(
        instances, layout, raise_rule, thresholds, mis_oracle,
        conflict_adj=conflict_adj, plan=plan,
    )
