"""First-phase journals: recorded epochs, replay certification, warm starts.

The delta-solve path (:mod:`repro.service.delta`) re-solves a *perturbed*
problem by warm-starting from the journal of an earlier solve.  The
certification argument deliberately does **not** rest on the problem
diff -- diffs mark which epochs are *expected* dirty, nothing more.
What makes a replayed epoch safe is **input-signature equality**:

* an epoch of the incremental engine is a pure function of its group
  members (content, ids, critical edges), the dual values *visible* to
  it (``alpha`` over member demand ids, ``beta`` over member path
  edges), its epoch coordinate, and the phase configuration
  (thresholds, raise rule, MIS oracle family + seed);
* :func:`epoch_signature` captures exactly those inputs, with floats
  encoded via ``float.hex`` so equality is bitwise;
* by induction over epochs: if every earlier epoch's writes were
  reproduced exactly (replayed from a record whose signature matched,
  or re-run fresh), the master dual before epoch ``k`` equals a cold
  run's -- so a signature match at epoch ``k`` proves the cold run
  would behave identically, and replaying the recorded raise events
  (mirroring :meth:`~repro.core.dual.RaiseRule.apply` write-for-write)
  *is* running the epoch.

Epochs whose signature does not match simply re-run through
:func:`~repro.core.engines.incremental.run_epoch_incremental`; there is
no uncertifiable intermediate state and no "verify after the fact"
step -- the delta result is bit-identical to a cold solve by
construction.  The per-epoch MIS substream isolation
(:func:`repro.distributed.mis.luby_substream_seed`) is what makes
skipping an epoch safe for the randomized oracle: a replayed epoch
never consumes draws a later epoch would have seen.

A journal is installed around a solve with :func:`journal_context`
(a ``contextvars`` scope, so concurrent service solves on different
threads never share one); the incremental engine checks
:func:`active_journal` and delegates to its journaled runner.
"""
from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent, RaiseRule
from repro.core.engines.artifacts import InstanceLayout, PhaseCounters
from repro.core.types import EPS
from repro.distributed.mis import MISOracle

__all__ = [
    "AdmissionLog",
    "AdmissionRecord",
    "EpochRecord",
    "FirstPhaseJournal",
    "PhaseLog",
    "SolveJournal",
    "active_journal",
    "admission_config",
    "admission_signature",
    "epoch_signature",
    "journal_context",
    "phase_config",
    "predict_dirty_epochs",
]

#: Version tags: a change to either layout makes old records unmatchable
#: (a stale record can only ever cost a re-run, never a wrong replay).
_SIG_TAG = "epoch-sig/v1"
_CONFIG_TAG = "phase-config/v1"
_ADMISSION_SIG_TAG = "admission-sig/v1"
_ADMISSION_CONFIG_TAG = "admission-config/v1"


@dataclass(frozen=True)
class EpochRecord:
    """One epoch's certified inputs and recorded outputs.

    ``signature`` is :func:`epoch_signature` at the moment the epoch
    started; ``events``/``stack`` are its raise log and MIS batches
    (``order`` fields are renumbered on replay, everything else is
    replayed verbatim); ``counters`` is the *per-epoch* work account,
    folded into the global counters exactly like the parallel engine
    merges per-epoch jobs.  Treat records as immutable: a replayed
    record is re-linked, shared, into the fresh journal.
    """

    signature: Tuple
    events: Tuple[RaiseEvent, ...]
    stack: Tuple[Tuple[DemandInstance, ...], ...]
    counters: PhaseCounters


@dataclass
class PhaseLog:
    """The records of one ``run_first_phase`` call (one solve may run
    several: composite wide/narrow algorithms solve per part)."""

    config: Tuple
    records: Dict[int, EpochRecord] = field(default_factory=dict)


@dataclass(frozen=True)
class AdmissionRecord:
    """One admission component's certified inputs and recorded selection.

    ``signature`` is :func:`admission_signature` over the component's
    stack slice (member content per batch in pop order, plus the dual
    entries visible to it); ``selected_ids`` is the instance-id sequence
    the greedy pop admitted, in admission order; ``checks`` is the
    fits-check count, folded into :class:`PhaseCounters` on replay.
    Greedy admission is a pure function of the signed inputs, so a
    signature match certifies the recorded selection verbatim.
    """

    signature: Tuple
    selected_ids: Tuple[int, ...]
    checks: int


@dataclass
class AdmissionLog:
    """The admission records of one ``run_second_phase`` call, keyed by
    component key (smallest member instance id -- stable under churn; a
    key collision across mutations only costs a re-pop, never a wrong
    replay, because the signature is still checked)."""

    config: Tuple
    records: Dict[int, AdmissionRecord] = field(default_factory=dict)


@dataclass
class SolveJournal:
    """Every first phase of one solve, in call order, plus the solve's
    layout work.

    ``decomps`` holds the per-network tree decompositions and
    ``layered`` the per-(network, instance-expansion) layered
    decompositions built during the solve
    (:func:`repro.algorithms.base.tree_layouts` reads and writes them
    through the active journal).  Keys embed the *full* network content
    -- and, for ``layered``, the exact instance tuple -- so a reused
    entry is value-identical to a rebuild by construction; a mutated
    network or demand set simply misses and rebuilds.  This is where
    most of a warm start's latency win lives: decompositions are pure
    functions of the networks, which churn rarely touches.
    """

    phases: List[PhaseLog] = field(default_factory=list)
    admissions: List[AdmissionLog] = field(default_factory=list)
    decomps: Dict[Tuple, object] = field(default_factory=dict)
    layered: Dict[Tuple, object] = field(default_factory=dict)

    @property
    def n_epochs_recorded(self) -> int:
        return sum(len(p.records) for p in self.phases)


def phase_config(
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
) -> Tuple:
    """The phase-level inputs an :class:`EpochRecord` is only valid under.

    Oracles are identified by family and seed: the bundled oracles are
    pure functions of (seed, epoch substream, candidates, context), so
    family + seed pins their draws; an unknown custom oracle still gets
    a distinct tag (its type name) and at worst fails to match -- a
    re-run, never a wrong replay.
    """
    oracle_tag = (
        getattr(mis_oracle, "__name__", type(mis_oracle).__name__),
        getattr(mis_oracle, "seed", None),
    )
    return (
        _CONFIG_TAG,
        layout.n_epochs,
        tuple(float(t).hex() for t in thresholds),
        type(raise_rule).__name__,
        bool(raise_rule.use_alpha),
        bool(raise_rule.use_height_rule),
        oracle_tag,
    )


def epoch_signature(
    members: Sequence[DemandInstance],
    dual: DualState,
    layout: InstanceLayout,
) -> Tuple:
    """Everything epoch behaviour depends on, as a comparable tuple.

    Covers the members' full content (ids, endpoints, profit/height as
    exact hex floats, path, start slot) plus their critical-edge tuples
    from the layout, and the dual entries the epoch can *read*:
    ``alpha`` over member demand ids and ``beta`` over member path
    edges, both restricted to keys actually present.  Keys absent from
    both runs contribute nothing either way (``dict.get(..., 0.0)``),
    so restricting to present keys is exact, and insertion order of the
    dual dicts is irrelevant here -- reads are by key.
    """
    member_sig = tuple(
        (
            d.instance_id,
            d.demand_id,
            d.network_id,
            d.u,
            d.v,
            float(d.profit).hex(),
            float(d.height).hex(),
            tuple(sorted(d.path_edges)),
            tuple(d.path_vertex_seq),
            d.start_slot,
            layout.pi[d.instance_id],
        )
        for d in members
    )
    alpha, beta = dual.alpha, dual.beta
    demand_ids = sorted({d.demand_id for d in members})
    alpha_sig = tuple((a, alpha[a].hex()) for a in demand_ids if a in alpha)
    edges = sorted({e for d in members for e in d.path_edges})
    beta_sig = tuple((e, beta[e].hex()) for e in edges if e in beta)
    return (_SIG_TAG, member_sig, alpha_sig, beta_sig)


def admission_config() -> Tuple:
    """The admission-level inputs an :class:`AdmissionRecord` is only
    valid under: the capacity constants the greedy fits-check compares
    against, as exact hex floats.  These are compile-time constants
    today, but folding them in means a future configurable-capacity
    change invalidates old records instead of replaying them wrongly.
    """
    return (_ADMISSION_CONFIG_TAG, float(1.0).hex(), float(EPS).hex())


def admission_signature(
    batches: Sequence[Sequence[DemandInstance]],
    dual: Optional[DualState],
) -> Tuple:
    """Everything a component's greedy pop depends on, as a comparable
    tuple.

    Covers the component's stack slice batch-by-batch in *push* order
    (the pop reverses it deterministically): each member's ids,
    profit/height as exact hex floats, and sorted path edges -- the
    exact inputs :class:`~repro.core.solution.CapacityLedger` reads.
    The dual state never feeds the pop itself, but a replayed selection
    is presented as "what this dual's admission chose", so the alpha
    entries over member demand ids and beta entries over member path
    edges (restricted to present keys, like :func:`epoch_signature`)
    are folded in: a dual that drifted re-pops instead of replaying a
    selection it never produced.  ``dual=None`` (the bare
    ``run_second_phase`` facade) signs with empty dual components.
    """
    batch_sig = tuple(
        tuple(
            (
                d.instance_id,
                d.demand_id,
                float(d.profit).hex(),
                float(d.height).hex(),
                tuple(sorted(d.path_edges)),
            )
            for d in batch
        )
        for batch in batches
    )
    if dual is None:
        alpha_sig: Tuple = ()
        beta_sig: Tuple = ()
    else:
        alpha, beta = dual.alpha, dual.beta
        demand_ids = sorted({d.demand_id for batch in batches for d in batch})
        alpha_sig = tuple((a, alpha[a].hex()) for a in demand_ids if a in alpha)
        edges = sorted(
            {e for batch in batches for d in batch for e in d.path_edges}
        )
        beta_sig = tuple((e, beta[e].hex()) for e in edges if e in beta)
    return (_ADMISSION_SIG_TAG, batch_sig, alpha_sig, beta_sig)


def predict_dirty_epochs(
    plan,
    touched_demands: FrozenSet,
    touched_edges: FrozenSet,
) -> Set[int]:
    """Epochs a perturbation is *expected* to dirty, via the plan's
    reverse indices and interaction graph.

    An epoch is directly dirty when its group touches a perturbed
    demand or edge (the per-epoch
    :class:`~repro.distributed.conflict.InstanceIndex` buckets); dirt
    then flows forward through :attr:`~repro.core.plan.EpochPlan.interactions`
    in ascending epoch order, since a dirty epoch's changed writes can
    only influence epochs that share a dual variable with it.  This is
    telemetry and a bail heuristic -- replay safety comes from
    :func:`epoch_signature`, which is checked for every epoch
    regardless (``prediction_misses`` counts where the two disagree).
    """
    if not touched_demands and not touched_edges:
        return set()
    dirty: Set[int] = set()
    for epoch in sorted(plan.members):
        idx = plan.index[epoch]
        direct = any(a in idx.by_demand for a in touched_demands) or any(
            e in idx.by_edge for e in touched_edges
        )
        inherited = any(
            j in dirty for j in plan.interactions.get(epoch, ()) if j < epoch
        )
        if direct or inherited:
            dirty.add(epoch)
    return dirty


@dataclass
class FirstPhaseJournal:
    """The live journal of one (possibly warm-started) solve.

    ``ancestor`` holds the recorded journal of the solve to warm-start
    from (``None`` records cold); ``touched_demands``/``touched_edges``
    are the perturbation sets from the problem diff, used only for the
    dirty-epoch *prediction*.  ``journal`` accumulates this solve's own
    records -- replayed epochs re-link the ancestor's record objects --
    so a chain of delta solves always has a complete, current journal
    to hand to the next mutation.
    """

    ancestor: Optional[SolveJournal] = None
    touched_demands: FrozenSet = frozenset()
    touched_edges: FrozenSet = frozenset()
    journal: SolveJournal = field(default_factory=SolveJournal)
    # Telemetry, accumulated across the solve's phases.
    phases: int = 0
    epochs_replayed: int = 0
    epochs_rerun: int = 0
    predicted_dirty: int = 0
    prediction_misses: int = 0
    layouts_reused: int = 0
    admission_components: int = 0
    admission_replayed: int = 0
    admission_rerun: int = 0

    # -- layout cache (see :class:`SolveJournal`) ----------------------
    def lookup_decomp(self, key: Tuple):
        """A cached tree decomposition, ancestor first, else this solve's."""
        if self.ancestor is not None and key in self.ancestor.decomps:
            return self.ancestor.decomps[key]
        return self.journal.decomps.get(key)

    def lookup_layered(self, key: Tuple):
        """A cached layered decomposition, ancestor first."""
        if self.ancestor is not None and key in self.ancestor.layered:
            return self.ancestor.layered[key]
        return self.journal.layered.get(key)

    def record_layouts(self, dkey: Tuple, decomp, lkey: Tuple, layered) -> None:
        """Record this solve's layout objects (re-linking reused ones),
        so the next delta in the chain inherits a complete cache."""
        self.journal.decomps[dkey] = decomp
        self.journal.layered[lkey] = layered

    def record_layered(self, lkey: Tuple, layered) -> None:
        """Record one layered decomposition alone -- the line-network
        path, which has no tree decomposition to cache alongside."""
        self.journal.layered[lkey] = layered

    def begin_phase(
        self, config: Tuple, plan
    ) -> Tuple[Optional[PhaseLog], PhaseLog, Set[int]]:
        """Open the next phase: returns ``(ancestor phase or None, the
        fresh log to record into, the predicted-dirty epoch set)``.

        Ancestor phases are matched by call ordinal *and* config
        equality -- a solve whose phase structure diverged from its
        ancestor's (the wide/narrow split changed shape) degrades to
        re-running, which is always correct.
        """
        ordinal = len(self.journal.phases)
        self.phases += 1
        log = PhaseLog(config=config)
        self.journal.phases.append(log)
        predicted = predict_dirty_epochs(
            plan, self.touched_demands, self.touched_edges
        )
        self.predicted_dirty += len(predicted)
        past: Optional[PhaseLog] = None
        if self.ancestor is not None and ordinal < len(self.ancestor.phases):
            candidate = self.ancestor.phases[ordinal]
            if candidate.config == config:
                past = candidate
        return past, log, predicted

    def begin_admission(
        self, config: Tuple
    ) -> Tuple[Optional[AdmissionLog], AdmissionLog]:
        """Open the next admission phase: returns ``(ancestor admission
        log or None, the fresh log to record into)``.

        Mirrors :meth:`begin_phase`: ancestor admission logs are matched
        by call ordinal and config equality, so a solve whose phase
        structure diverged from its ancestor's degrades to re-popping.
        """
        ordinal = len(self.journal.admissions)
        log = AdmissionLog(config=config)
        self.journal.admissions.append(log)
        past: Optional[AdmissionLog] = None
        if self.ancestor is not None and ordinal < len(
            self.ancestor.admissions
        ):
            candidate = self.ancestor.admissions[ordinal]
            if candidate.config == config:
                past = candidate
        return past, log

    def stats_snapshot(self) -> Dict[str, int]:
        """The telemetry counters as a plain dict."""
        return {
            "phases": self.phases,
            "epochs_replayed": self.epochs_replayed,
            "epochs_rerun": self.epochs_rerun,
            "predicted_dirty": self.predicted_dirty,
            "prediction_misses": self.prediction_misses,
            "layouts_reused": self.layouts_reused,
            "admission_components": self.admission_components,
            "admission_replayed": self.admission_replayed,
            "admission_rerun": self.admission_rerun,
        }


_ACTIVE: "contextvars.ContextVar[Optional[FirstPhaseJournal]]" = (
    contextvars.ContextVar("repro_first_phase_journal", default=None)
)


def active_journal() -> Optional[FirstPhaseJournal]:
    """The journal installed for the current context, if any."""
    return _ACTIVE.get()


@contextmanager
def journal_context(journal: FirstPhaseJournal):
    """Install *journal* for the duration of a solve call.

    ``contextvars`` scoping: each service worker thread solving
    concurrently sees only its own journal, and nested solves within
    one call (composite wide/narrow parts) share it -- which is what
    the phase-ordinal matching in :meth:`FirstPhaseJournal.begin_phase`
    relies on.
    """
    token = _ACTIVE.set(journal)
    try:
        yield journal
    finally:
        _ACTIVE.reset(token)
