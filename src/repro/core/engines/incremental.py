"""The incremental (dirty-set) first-phase engine.

Semantically identical to the reference engine, but maintains a
per-(epoch, stage) *unsatisfied* set updated via dirty-sets; see
:func:`run_first_phase_incremental` for the correctness argument.

The per-epoch loop body lives in :func:`run_epoch_incremental` so the
parallel engine (:mod:`repro.core.engines.parallel`) can execute exactly
the same epoch computation over plan-sliced state: given equal inputs
(members, dual values visible to the epoch, index, adjacency restricted
to the members, oracle draws) it produces bit-identical events, stack
batches and counter increments.
"""
from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent, RaiseRule
from repro.core.engines.artifacts import (
    FirstPhaseArtifacts,
    InstanceLayout,
    PhaseCounters,
    group_members,
    stall_error,
)
from repro.core.engines.journal import (
    EpochRecord,
    FirstPhaseJournal,
    active_journal,
    epoch_signature,
    phase_config,
)
from repro.core.types import InstanceId
from repro.distributed.conflict import (
    ConflictAdjacency,
    InstanceIndex,
    build_instance_index,
)
from repro.distributed.mis import MISOracle


def run_epoch_incremental(
    epoch: int,
    members: Sequence[DemandInstance],
    by_id: Mapping[InstanceId, DemandInstance],
    dual: DualState,
    index: InstanceIndex,
    conflict_adj: ConflictAdjacency,
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    events: List[RaiseEvent],
    stack: List[List[DemandInstance]],
    counters: PhaseCounters,
    order: int,
) -> int:
    """Run one epoch of the dirty-set engine; returns the next raise order.

    ``index`` may be the global instance index or one restricted to
    *members*: dirty sets are always intersected with the member LHS
    cache, so both give identical behaviour (the restricted one is just
    cheaper -- that is the parallel engine's slicing win).  Likewise
    ``conflict_adj`` may be global or member-restricted: the active-set
    view intersects neighbor sets with the unsatisfied members anyway.
    """
    # LHS cache, one full evaluation per member per epoch; afterwards
    # entries are recomputed only when their instance is dirty.
    lhs_of: Dict[InstanceId, float] = {}
    for d in members:
        counters.satisfaction_checks += 1
        lhs_of[d.instance_id] = dual.lhs(d)
    for stage_no, tau in enumerate(thresholds, start=1):
        counters.stages += 1
        # Stage boundary: tau rose; re-derive the unsatisfied set from
        # the cache (same predicate as DualState.is_satisfied).
        unsat = {
            d.instance_id
            for d in members
            if not DualState.lhs_satisfies(lhs_of[d.instance_id], d.profit, tau)
        }
        if not unsat:
            continue
        # Active-set view of the conflict graph, built once per stage
        # and shrunk in place as instances satisfy.
        active_adj: ConflictAdjacency = {}
        for i in unsat:
            active_adj[i] = conflict_adj[i] & unsat
            counters.adjacency_touches += 1 + len(conflict_adj[i])
        step = 0
        while unsat:
            step += 1
            if step > len(members):  # each step must satisfy >= 1 member
                raise stall_error(epoch, stage_no, len(members))
            candidates = [by_id[i] for i in sorted(unsat)]
            mis_ids, rounds = mis_oracle(
                candidates, active_adj, (epoch, stage_no, step)
            )
            counters.mis_rounds += rounds
            chosen = [by_id[i] for i in sorted(mis_ids)]
            dirty: set = set()
            for d in chosen:
                delta = raise_rule.apply(dual, d, layout.pi[d.instance_id])
                events.append(
                    RaiseEvent(
                        order=order,
                        instance=d,
                        delta=delta,
                        critical_edges=layout.pi[d.instance_id],
                        step_tuple=(epoch, stage_no, step),
                    )
                )
                order += 1
                counters.raises += 1
                dirty.add(d.instance_id)
                dirty |= index.affected_by(d.demand_id, layout.pi[d.instance_id])
            stack.append(chosen)
            counters.steps += 1
            # Refresh the cache for dirty group members and retire the
            # ones that became tau-satisfied.
            newly_satisfied = []
            for i in sorted(dirty & lhs_of.keys()):
                d = by_id[i]
                counters.satisfaction_checks += 1
                lhs = dual.lhs(d)
                lhs_of[i] = lhs
                if i in unsat and DualState.lhs_satisfies(lhs, d.profit, tau):
                    newly_satisfied.append(i)
            for i in newly_satisfied:
                unsat.discard(i)
                nbrs = active_adj.pop(i)
                counters.adjacency_touches += 1 + len(nbrs)
                for nb in nbrs:
                    if nb in active_adj:
                        active_adj[nb].discard(i)
        counters.max_steps_per_stage = max(counters.max_steps_per_stage, step)
    return order


def run_first_phase_incremental(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    conflict_adj: Optional[ConflictAdjacency],
) -> FirstPhaseArtifacts:
    """Dirty-set engine: same semantics, incremental satisfaction state.

    Correctness rests on two facts.  (1) The LHS of an instance's dual
    constraint changes only when some neighbor's raise touches it: a
    raise on ``d`` moves ``alpha`` only for demand ``a_d`` and ``beta``
    only on ``pi(d)``, so the instances whose LHS moved (the *dirty
    set*) are exactly what :class:`InstanceIndex` returns.  (2) Raises
    only *increase* LHS values, so within one (epoch, stage) a satisfied
    instance stays satisfied -- only dirty instances can change status.

    Together these let the engine cache each member's LHS (recomputed
    only when dirty) so the ``tau``-satisfaction test is a cached float
    comparison, and maintain the per-stage *unsatisfied* set plus an
    active-set adjacency view that shrinks in place as instances
    satisfy, replacing the reference engine's per-step full rescan and
    ``restrict()`` rebuild.

    When a :class:`~repro.core.engines.journal.FirstPhaseJournal` is
    installed (:func:`~repro.core.engines.journal.journal_context`),
    execution delegates to :func:`_run_first_phase_journaled`, which
    records per-epoch inputs/outputs and replays signature-certified
    epochs from the journal's ancestor instead of re-running them; the
    prebuilt global *conflict_adj* is ignored there (``None`` is
    accepted) because the journaled runner slices per-epoch adjacency
    from an :class:`~repro.core.plan.EpochPlan`.
    """
    journal = active_journal()
    if journal is not None:
        return _run_first_phase_journaled(
            instances, layout, raise_rule, thresholds, mis_oracle, journal
        )
    if conflict_adj is None:
        raise ValueError(
            "run_first_phase_incremental needs conflict_adj unless a "
            "first-phase journal is active"
        )
    dual = DualState(use_height_rule=raise_rule.use_height_rule)
    by_id = {d.instance_id: d for d in instances}
    index = build_instance_index(instances)
    groups = group_members(instances, layout)
    events: List[RaiseEvent] = []
    stack: List[List[DemandInstance]] = []
    counters = PhaseCounters()
    order = 0
    for epoch in range(1, layout.n_epochs + 1):
        members = groups.get(epoch, [])
        counters.epochs += 1
        if not members:
            continue
        order = run_epoch_incremental(
            epoch, members, by_id, dual, index, conflict_adj, layout,
            raise_rule, thresholds, mis_oracle, events, stack, counters, order,
        )
    return dual, stack, events, counters


def _fold_counters(total: PhaseCounters, part: PhaseCounters) -> None:
    """Fold one epoch's counters into the phase total (the same merge
    discipline the parallel engine applies to per-epoch jobs; ``epochs``
    is accounted by the caller's loop, phase-2 and parallel fields stay
    untouched)."""
    total.stages += part.stages
    total.steps += part.steps
    total.raises += part.raises
    total.mis_rounds += part.mis_rounds
    total.satisfaction_checks += part.satisfaction_checks
    total.adjacency_touches += part.adjacency_touches
    total.max_steps_per_stage = max(
        total.max_steps_per_stage, part.max_steps_per_stage
    )


def _replay_epoch(
    record: EpochRecord,
    dual: DualState,
    raise_rule: RaiseRule,
    events: List[RaiseEvent],
    stack: List[List[DemandInstance]],
    order: int,
) -> int:
    """Re-apply a recorded epoch's writes to *dual*; returns next order.

    Mirrors :meth:`RaiseRule.apply` write-for-write: ``delta == 0.0``
    is exactly apply's no-write early return (``slack <= EPS``), since
    a positive slack over these rules' positive denominators cannot
    round to zero; otherwise alpha moves by the recorded delta and each
    critical edge by the rule's ``beta_increment`` -- a pure function
    of (delta, n_crit), so recomputing it reproduces the recorded run's
    float bit-for-bit.  Only the ``order`` field can differ from the
    recording (earlier epochs may have replayed a different event
    count), so events are re-stamped when needed and shared otherwise.
    """
    alpha, beta = dual.alpha, dual.beta
    for ev in record.events:
        if ev.delta != 0.0:
            if raise_rule.use_alpha:
                a = ev.instance.demand_id
                alpha[a] = alpha.get(a, 0.0) + ev.delta
            inc = raise_rule.beta_increment(ev.delta, len(ev.critical_edges))
            for e in ev.critical_edges:
                beta[e] = beta.get(e, 0.0) + inc
        events.append(ev if ev.order == order else replace(ev, order=order))
        order += 1
    for batch in record.stack:
        stack.append(list(batch))
    return order


def _run_first_phase_journaled(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    journal: FirstPhaseJournal,
) -> FirstPhaseArtifacts:
    """The journaled dirty-set run: record every epoch, replay certified ones.

    Uses :meth:`EpochPlan.build`'s per-epoch adjacency and reverse
    indices instead of the global conflict graph (cross-epoch conflict
    pairs are never consulted by the epoch loop, and skipping them is
    most of the delta path's latency win).  Each non-empty epoch is
    signature-checked against the journal's ancestor: a match replays
    the recorded events onto the master dual, anything else re-runs
    through :func:`run_epoch_incremental` on the plan slice.  Both
    outcomes append an :class:`EpochRecord` to the fresh journal, so
    every delta solve yields a complete journal for the *next* one.
    """
    from repro.core.plan import EpochPlan

    dual = DualState(use_height_rule=raise_rule.use_height_rule)
    by_id = {d.instance_id: d for d in instances}
    plan = EpochPlan.build(instances, layout)
    config = phase_config(layout, raise_rule, thresholds, mis_oracle)
    past, log, predicted = journal.begin_phase(config, plan)
    events: List[RaiseEvent] = []
    stack: List[List[DemandInstance]] = []
    counters = PhaseCounters()
    order = 0
    for epoch in range(1, layout.n_epochs + 1):
        members = plan.members.get(epoch, [])
        counters.epochs += 1
        if not members:
            continue
        signature = epoch_signature(members, dual, layout)
        record = past.records.get(epoch) if past is not None else None
        if record is not None and record.signature == signature:
            order = _replay_epoch(
                record, dual, raise_rule, events, stack, order
            )
            _fold_counters(counters, record.counters)
            log.records[epoch] = record
            journal.epochs_replayed += 1
            continue
        if past is not None and epoch not in predicted:
            journal.prediction_misses += 1
        part = PhaseCounters()
        start_ev, start_st = len(events), len(stack)
        order = run_epoch_incremental(
            epoch, members, by_id, dual, plan.index[epoch],
            plan.adjacency[epoch], layout, raise_rule, thresholds,
            mis_oracle, events, stack, part, order,
        )
        _fold_counters(counters, part)
        log.records[epoch] = EpochRecord(
            signature=signature,
            events=tuple(events[start_ev:]),
            stack=tuple(tuple(b) for b in stack[start_st:]),
            counters=part,
        )
        journal.epochs_rerun += 1
    return dual, stack, events, counters
