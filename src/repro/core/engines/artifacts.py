"""Shared artifacts of the first-phase engines.

Every engine (reference, incremental, parallel) consumes an
:class:`InstanceLayout` and produces the same artifact bundle: a final
:class:`~repro.core.dual.DualState`, the raise-event log, the stack of
MIS batches for the second phase, and a :class:`PhaseCounters` work
account -- the :data:`FirstPhaseArtifacts` tuple.  Keeping these types
(and the stall guard) in one module lets the engines live in separate
files without import cycles through the :mod:`repro.core.framework`
facade.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent
from repro.core.types import EdgeKey, InstanceId
from repro.trees.layered import LayeredDecomposition


@dataclass
class InstanceLayout:
    """Group index and critical edges for every instance of a problem.

    ``group_of`` is 1-based; epoch ``k`` of the first phase processes the
    union ``Gk`` of the ``k``-th groups of all per-network layered
    decompositions (Figure 7).
    """

    group_of: Dict[InstanceId, int]
    pi: Dict[InstanceId, Tuple[EdgeKey, ...]]
    n_epochs: int

    @property
    def critical_set_size(self) -> int:
        """``Delta``: the largest critical set over all instances."""
        if not self.pi:
            return 0
        return max(len(p) for p in self.pi.values())

    @staticmethod
    def from_layered(decompositions: Iterable[LayeredDecomposition]) -> "InstanceLayout":
        """Merge per-network layered decompositions (``Gk = U_q G(q)_k``)."""
        group_of: Dict[InstanceId, int] = {}
        pi: Dict[InstanceId, Tuple[EdgeKey, ...]] = {}
        n_epochs = 0
        for dec in decompositions:
            group_of.update(dec.group_of)
            pi.update(dec.pi)
            n_epochs = max(n_epochs, dec.length)
        return InstanceLayout(group_of=group_of, pi=pi, n_epochs=n_epochs)


@dataclass
class PhaseCounters:
    """Work and communication accounting for one two-phase run."""

    epochs: int = 0
    stages: int = 0
    steps: int = 0
    raises: int = 0
    mis_rounds: int = 0
    #: max steps observed in any single (epoch, stage) -- Lemma 5.1's L.
    max_steps_per_stage: int = 0
    #: communication rounds: per step, Time(MIS) + 1 round to broadcast the
    #: new dual values; phase 2 costs one announcement round per stack entry.
    phase2_rounds: int = 0
    #: calls to ``DualState.is_satisfied`` made by the first phase -- the
    #: reference engine pays steps x group per stage, the incremental
    #: engine group + dirty-set rechecks.
    satisfaction_checks: int = 0
    #: adjacency entries materialized or mutated while preparing each
    #: step's restricted conflict graph (entry plus neighbor-set size, so
    #: the number is comparable across engines).  Note: the parallel
    #: engine works off per-epoch adjacency slices, so it legitimately
    #: touches *fewer* entries than the incremental engine's global view.
    adjacency_touches: int = 0
    #: Worker-attribution fields (parallel engine only; zero elsewhere):
    #: number of wavefronts the epoch plan was executed in, and the
    #: worker-pool size used.  Excluded from engine-equivalence checks.
    wavefronts: int = 0
    workers_used: int = 0
    #: Second-phase work accounting (admission engine seam): fits-checks
    #: attempted, instances admitted, and instances rejected during the
    #: stack pop.  Engine-independent (every phase2 engine performs the
    #: same logical checks), but kept out of the default semantic tuple
    #: so golden digests recorded before the seam stay stable.
    admission_checks: int = 0
    admitted: int = 0
    rejected: int = 0

    @property
    def communication_rounds(self) -> int:
        """Total synchronous rounds of the simulated distributed run."""
        return self.mis_rounds + self.steps + self.phase2_rounds

    #: Fields that must be identical across engines for the same run.
    #: ``satisfaction_checks``/``adjacency_touches`` measure *engine*
    #: work, ``wavefronts``/``workers_used`` attribute it to workers --
    #: none of those are part of the semantic artifact.
    SEMANTIC_FIELDS = (
        "epochs", "stages", "steps", "raises", "mis_rounds",
        "max_steps_per_stage", "phase2_rounds",
    )

    #: Second-phase admission fields: semantic across phase2 engines,
    #: but only folded into :meth:`semantic_tuple` on request (compat
    #: guard -- digests recorded before the admission seam existed must
    #: keep verifying).
    ADMISSION_FIELDS = ("admission_checks", "admitted", "rejected")

    def semantic_tuple(self, include_admission: bool = False) -> Tuple[int, ...]:
        """The engine-independent schedule counters, for equivalence checks."""
        fields = self.SEMANTIC_FIELDS
        if include_admission:
            fields = fields + self.ADMISSION_FIELDS
        return tuple(getattr(self, f) for f in fields)


FirstPhaseArtifacts = Tuple[
    DualState, List[List[DemandInstance]], List[RaiseEvent], PhaseCounters
]


def stall_error(epoch: int, stage_no: int, n_members: int) -> RuntimeError:
    """A progress-guard failure: the MIS oracle stopped satisfying members."""
    return RuntimeError(
        f"first phase made no progress in epoch {epoch}, stage {stage_no}: "
        f"exceeded {n_members} steps for a group of {n_members} members "
        "(each step must tau-satisfy at least one instance; the MIS oracle "
        "is returning empty or non-raising sets)"
    )


def group_members(
    instances: Sequence[DemandInstance], layout: InstanceLayout
) -> Dict[int, List[DemandInstance]]:
    """Bucket *instances* into epoch groups, preserving input order."""
    groups: Dict[int, List[DemandInstance]] = {}
    for d in instances:
        groups.setdefault(layout.group_of[d.instance_id], []).append(d)
    return groups
