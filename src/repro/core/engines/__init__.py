"""The interchangeable first-phase engines.

``reference`` is the executable specification (the literal Figure 7
loop), ``incremental`` the dirty-set production engine, ``parallel`` the
plan-driven wave executor (whose *execution backend* -- thread pool,
process pool, or inline serial -- is itself pluggable, see
:mod:`repro.core.engines.backends`), and ``vectorized`` the
numpy-columnar kernel (:mod:`repro.core.engines.columnar`).  All four
engines produce bit-identical semantic artifacts for the bundled raise
rules and MIS oracles; :mod:`repro.core.framework` is the stable facade
that selects between them.

The second phase has its own engine seam
(:mod:`repro.core.engines.admission`): ``reference`` / ``sliced`` /
``vectorized`` stack pops, all bit-identical, plus journal-backed
component replay for delta solves.
"""
from repro.core.engines.admission import (
    ADMISSION_ENGINES,
    AdmissionComponent,
    AdmissionJob,
    AdmissionOutcome,
    run_admission_job_body,
    run_second_phase,
    stack_components,
    validate_admission_engine,
)
from repro.core.engines.artifacts import (
    FirstPhaseArtifacts,
    InstanceLayout,
    PhaseCounters,
    group_members,
    stall_error,
)
from repro.core.engines.backends import (
    BACKEND_ENV_VAR,
    BACKENDS,
    EpochExecutorBackend,
    EpochJob,
    EpochOutcome,
    default_workers,
    make_backend,
    resolve_backend,
    run_epoch_job,
    usable_cpu_count,
    validate_backend,
)
from repro.core.engines.columnar import (
    ColumnarLayout,
    build_columnar,
    run_epoch_columnar,
    run_first_phase_vectorized,
)
from repro.core.engines.incremental import (
    run_epoch_incremental,
    run_first_phase_incremental,
)
from repro.core.engines.journal import (
    AdmissionLog,
    AdmissionRecord,
    EpochRecord,
    FirstPhaseJournal,
    PhaseLog,
    SolveJournal,
    active_journal,
    admission_config,
    admission_signature,
    epoch_signature,
    journal_context,
    phase_config,
    predict_dirty_epochs,
)
from repro.core.engines.parallel import (
    ParallelEpochExecutor,
    run_first_phase_parallel,
)
from repro.core.engines.reference import run_first_phase_reference

__all__ = [
    "ADMISSION_ENGINES",
    "AdmissionComponent",
    "AdmissionJob",
    "AdmissionLog",
    "AdmissionOutcome",
    "AdmissionRecord",
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "ColumnarLayout",
    "EpochExecutorBackend",
    "EpochJob",
    "EpochOutcome",
    "EpochRecord",
    "FirstPhaseArtifacts",
    "FirstPhaseJournal",
    "InstanceLayout",
    "ParallelEpochExecutor",
    "PhaseCounters",
    "PhaseLog",
    "SolveJournal",
    "active_journal",
    "admission_config",
    "admission_signature",
    "build_columnar",
    "default_workers",
    "epoch_signature",
    "group_members",
    "journal_context",
    "make_backend",
    "phase_config",
    "predict_dirty_epochs",
    "resolve_backend",
    "run_admission_job_body",
    "run_epoch_columnar",
    "run_epoch_incremental",
    "run_epoch_job",
    "run_first_phase_incremental",
    "run_first_phase_parallel",
    "run_first_phase_reference",
    "run_first_phase_vectorized",
    "run_second_phase",
    "stack_components",
    "stall_error",
    "usable_cpu_count",
    "validate_admission_engine",
    "validate_backend",
]
