"""The interchangeable first-phase engines.

``reference`` is the executable specification (the literal Figure 7
loop), ``incremental`` the dirty-set production engine, ``parallel`` the
plan-driven wave executor.  All three produce bit-identical semantic
artifacts; :mod:`repro.core.framework` is the stable facade that selects
between them.
"""
from repro.core.engines.artifacts import (
    FirstPhaseArtifacts,
    InstanceLayout,
    PhaseCounters,
    group_members,
    stall_error,
)
from repro.core.engines.incremental import (
    run_epoch_incremental,
    run_first_phase_incremental,
)
from repro.core.engines.parallel import (
    ParallelEpochExecutor,
    default_workers,
    run_first_phase_parallel,
)
from repro.core.engines.reference import run_first_phase_reference

__all__ = [
    "FirstPhaseArtifacts",
    "InstanceLayout",
    "ParallelEpochExecutor",
    "PhaseCounters",
    "default_workers",
    "group_members",
    "run_epoch_incremental",
    "run_first_phase_incremental",
    "run_first_phase_parallel",
    "run_first_phase_reference",
    "stall_error",
]
