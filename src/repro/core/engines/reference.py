"""The reference first-phase engine: the literal Figure 7 loop.

Every step rescans all group members for ``tau``-satisfaction and
rebuilds the restricted conflict graph from scratch, ``O(steps x
group^2)`` work per stage.  It is the executable specification against
which the incremental and parallel engines are golden-tested.
"""
from __future__ import annotations

from typing import List, Sequence

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent, RaiseRule
from repro.core.engines.artifacts import (
    FirstPhaseArtifacts,
    InstanceLayout,
    PhaseCounters,
    group_members,
    stall_error,
)
from repro.distributed.conflict import ConflictAdjacency, restrict
from repro.distributed.mis import MISOracle


def run_first_phase_reference(
    instances: Sequence[DemandInstance],
    layout: InstanceLayout,
    raise_rule: RaiseRule,
    thresholds: Sequence[float],
    mis_oracle: MISOracle,
    conflict_adj: ConflictAdjacency,
) -> FirstPhaseArtifacts:
    """The literal Figure 7 loop: full rescans, per-step ``restrict()``."""
    dual = DualState(use_height_rule=raise_rule.use_height_rule)
    by_id = {d.instance_id: d for d in instances}
    groups = group_members(instances, layout)
    events: List[RaiseEvent] = []
    stack: List[List[DemandInstance]] = []
    counters = PhaseCounters()
    order = 0
    for epoch in range(1, layout.n_epochs + 1):
        members = groups.get(epoch, [])
        counters.epochs += 1
        if not members:
            continue
        for stage_no, tau in enumerate(thresholds, start=1):
            counters.stages += 1
            step = 0
            while True:
                counters.satisfaction_checks += len(members)
                unsatisfied = [d for d in members if not dual.is_satisfied(d, tau)]
                if not unsatisfied:
                    break
                step += 1
                if step > len(members):  # each step must satisfy >= 1 member
                    raise stall_error(epoch, stage_no, len(members))
                unsatisfied_ids = [d.instance_id for d in unsatisfied]
                for i in unsatisfied_ids:
                    counters.adjacency_touches += 1 + len(conflict_adj[i])
                mis_ids, rounds = mis_oracle(
                    unsatisfied,
                    restrict(conflict_adj, unsatisfied_ids),
                    (epoch, stage_no, step),
                )
                counters.mis_rounds += rounds
                chosen = [by_id[i] for i in sorted(mis_ids)]
                for d in chosen:
                    delta = raise_rule.apply(dual, d, layout.pi[d.instance_id])
                    events.append(
                        RaiseEvent(
                            order=order,
                            instance=d,
                            delta=delta,
                            critical_edges=layout.pi[d.instance_id],
                            step_tuple=(epoch, stage_no, step),
                        )
                    )
                    order += 1
                    counters.raises += 1
                stack.append(chosen)
                counters.steps += 1
            counters.max_steps_per_stage = max(counters.max_steps_per_stage, step)
    return dual, stack, events, counters
