"""The result object of a full two-phase run.

Separated from the engine selection logic in
:mod:`repro.core.framework` (which re-exports it) so the engines
package, the planner and downstream consumers can all name the type
without importing the facade.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent
from repro.core.engines.artifacts import InstanceLayout, PhaseCounters
from repro.core.solution import Solution


@dataclass
class TwoPhaseResult:
    """Everything produced by one run of the framework."""

    solution: Solution
    dual: DualState
    events: List[RaiseEvent]
    stack: List[List[DemandInstance]]
    slackness: float
    layout: InstanceLayout
    counters: PhaseCounters
    thresholds: List[float]

    @property
    def profit(self) -> float:
        """``p(S)``."""
        return self.solution.profit

    @property
    def certified_upper_bound(self) -> float:
        """``val(alpha, beta) / lambda >= p(Opt)`` by weak duality."""
        return self.dual.scaled_value(self.slackness)

    @property
    def certified_ratio(self) -> float:
        """Per-run certified approximation factor (``>= Opt/p(S)``)."""
        if self.profit <= 0:
            return float("inf")
        return self.certified_upper_bound / self.profit

    @property
    def raised_delta(self) -> int:
        """Largest critical set actually used by a raise."""
        if not self.events:
            return 0
        return max(len(ev.critical_edges) for ev in self.events)
