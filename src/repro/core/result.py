"""The result object of a full two-phase run.

Separated from the engine selection logic in
:mod:`repro.core.framework` (which re-exports it) so the engines
package, the planner and downstream consumers can all name the type
without importing the facade.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.canonical import stable_digest
from repro.core.demand import DemandInstance
from repro.core.dual import DualState, RaiseEvent
from repro.core.engines.artifacts import InstanceLayout, PhaseCounters
from repro.core.solution import Solution


@dataclass
class TwoPhaseResult:
    """Everything produced by one run of the framework."""

    solution: Solution
    dual: DualState
    events: List[RaiseEvent]
    stack: List[List[DemandInstance]]
    slackness: float
    layout: InstanceLayout
    counters: PhaseCounters
    thresholds: List[float]

    @property
    def profit(self) -> float:
        """``p(S)``."""
        return self.solution.profit

    @property
    def certified_upper_bound(self) -> float:
        """``val(alpha, beta) / lambda >= p(Opt)`` by weak duality."""
        return self.dual.scaled_value(self.slackness)

    @property
    def certified_ratio(self) -> float:
        """Per-run certified approximation factor (``>= Opt/p(S)``)."""
        if self.profit <= 0:
            return float("inf")
        return self.certified_upper_bound / self.profit

    @property
    def raised_delta(self) -> int:
        """Largest critical set actually used by a raise."""
        if not self.events:
            return 0
        return max(len(ev.critical_edges) for ev in self.events)

    def semantic_tuple(self):
        """The run's engine-independent artifact, as one comparable value.

        Everything the bit-identity contract covers, in one tuple: the
        selected instance ids, the full raise log (order, instance,
        exact float delta, critical edges, step coordinate), the stack
        shape, the schedule counters
        (:meth:`~repro.core.engines.artifacts.PhaseCounters.semantic_tuple`),
        and the final dual assignments *as ordered items* -- so two runs
        compare equal only if their dual dicts also agree on insertion
        order, which ``DualState.value()`` (float summation order) and
        downstream certificates depend on.  The cross-engine/backends
        differential harness (``tests/test_backends.py``) compares
        exactly this.
        """
        return (
            tuple(d.instance_id for d in self.solution.selected),
            tuple(
                (e.order, e.instance.instance_id, e.delta,
                 e.critical_edges, e.step_tuple)
                for e in self.events
            ),
            tuple(
                tuple(d.instance_id for d in batch) for batch in self.stack
            ),
            self.counters.semantic_tuple(),
            tuple(self.dual.alpha.items()),
            tuple(self.dual.beta.items()),
        )

    def semantic_digest(self) -> str:
        """Stable hex digest of :meth:`semantic_tuple`.

        The cache-safety form of the bit-identity contract: the tuple
        itself holds ids, exact floats, edge keys and *ordered* dual
        items, and :func:`repro.core.canonical.stable_digest` encodes
        all of those deterministically (floats via ``float.hex``, no
        dependence on per-process hash randomization).  The service
        layer's disk tier records this digest when a result is admitted
        and re-verifies it after unpickling, so a corrupted or stale
        cache file can never impersonate a live solve.
        """
        return stable_digest(self.semantic_tuple())
