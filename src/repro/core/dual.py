"""Dual variables and raise rules for the primal-dual framework.

The dual program (Section 3.1, generalized with heights in Section 6.1)
has a variable ``alpha(a)`` per demand and ``beta(e)`` per edge, and per
demand instance ``d`` the constraint::

    alpha(a_d) + h(d) * sum_{e : d ~ e} beta(e)  >=  p(d)

(``h(d) = 1`` in the unit-height case).  :class:`DualState` stores the
assignment; the raise rules implement the two raising strategies:

* :class:`UnitRaise` (Section 3.2): ``delta = s / (|pi|+1)``; raise
  ``alpha`` and every critical ``beta(e)`` by ``delta``.
* :class:`HeightRaise` (Section 6.1): ``delta = s / (1 + 2 h |pi|^2)``;
  raise ``alpha`` by ``delta`` and every critical ``beta(e)`` by
  ``2 |pi| delta``.

Both rules leave the raised instance's constraint *tight*.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.demand import DemandInstance
from repro.core.types import EPS, DemandId, EdgeKey


@dataclass(frozen=True)
class RaiseEvent:
    """Record of one dual raise: who, by how much, on which critical edges.

    ``order`` is the global raise sequence number; ``step_tuple`` is the
    (epoch, stage, step) coordinate of the framework schedule.
    """

    order: int
    instance: DemandInstance
    delta: float
    critical_edges: Tuple[EdgeKey, ...]
    step_tuple: Tuple[int, int, int]


class DualState:
    """The dual assignment ``<alpha, beta>``."""

    def __init__(self, use_height_rule: bool = False) -> None:
        self.alpha: Dict[DemandId, float] = {}
        self.beta: Dict[EdgeKey, float] = {}
        self.use_height_rule = use_height_rule

    def lhs(self, d: DemandInstance) -> float:
        """LHS of the dual constraint of *d*."""
        beta_sum = 0.0
        for e in d.path_edges:
            beta_sum += self.beta.get(e, 0.0)
        coeff = d.height if self.use_height_rule else 1.0
        return self.alpha.get(d.demand_id, 0.0) + coeff * beta_sum

    def slack(self, d: DemandInstance) -> float:
        """``s = p(d) - LHS`` (positive while the constraint is unsatisfied)."""
        return d.profit - self.lhs(d)

    @staticmethod
    def lhs_satisfies(lhs: float, profit: float, tau: float) -> bool:
        """The ``tau``-satisfied predicate on a precomputed LHS value.

        Shared by :meth:`is_satisfied` and the incremental engine's LHS
        cache so the tolerance convention lives in exactly one place.
        """
        return lhs >= tau * profit - EPS

    def is_satisfied(self, d: DemandInstance, tau: float = 1.0) -> bool:
        """The paper's ``tau``-satisfied test: ``LHS >= tau * p(d)``."""
        return self.lhs_satisfies(self.lhs(d), d.profit, tau)

    def value(self) -> float:
        """Dual objective ``sum alpha + sum beta``."""
        return sum(self.alpha.values()) + sum(self.beta.values())

    def scaled_value(self, slackness: float) -> float:
        """``val(alpha, beta) / lambda``: an upper bound on ``p(Opt)``
        once every instance is ``lambda``-satisfied (weak duality)."""
        if not 0 < slackness <= 1:
            raise ValueError(f"slackness must lie in (0, 1], got {slackness}")
        return self.value() / slackness


class RaiseRule:
    """Strategy interface: how to raise duals so *d*'s constraint is tight."""

    #: Whether this rule uses the height-generalized dual constraint.
    use_height_rule = False
    #: Whether ``alpha`` is raised at all.  The single-tree sequential
    #: algorithm (Appendix A) skips alpha and improves its ratio to 2.
    use_alpha = True

    def delta(self, d: DemandInstance, slack: float, n_critical: int) -> float:
        raise NotImplementedError

    def beta_increment(self, delta: float, n_critical: int) -> float:
        raise NotImplementedError

    def apply(
        self,
        dual: DualState,
        d: DemandInstance,
        critical_edges: Sequence[EdgeKey],
    ) -> float:
        """Raise duals for *d*; returns the raise amount ``delta(d)``."""
        slack = dual.slack(d)
        if slack <= EPS:
            return 0.0
        n_crit = len(critical_edges)
        delta = self.delta(d, slack, n_crit)
        if self.use_alpha:
            dual.alpha[d.demand_id] = dual.alpha.get(d.demand_id, 0.0) + delta
        inc = self.beta_increment(delta, n_crit)
        for e in critical_edges:
            dual.beta[e] = dual.beta.get(e, 0.0) + inc
        return delta

    def objective_increase_factor(self, n_critical: int) -> float:
        """By how many multiples of ``delta`` one raise can grow the dual
        objective (the ``Delta + 1`` resp. ``2 Delta^2 + 1`` of the
        approximation lemmas)."""
        raise NotImplementedError


class UnitRaise(RaiseRule):
    """Raise rule of the unit-height framework (Section 3.2)."""

    use_height_rule = False

    def __init__(self, use_alpha: bool = True) -> None:
        self.use_alpha = use_alpha

    def delta(self, d: DemandInstance, slack: float, n_critical: int) -> float:
        denom = n_critical + 1 if self.use_alpha else n_critical
        if denom == 0:
            raise ValueError("cannot raise with no alpha and no critical edges")
        return slack / denom

    def beta_increment(self, delta: float, n_critical: int) -> float:
        return delta

    def objective_increase_factor(self, n_critical: int) -> float:
        return n_critical + (1 if self.use_alpha else 0)


class HeightRaise(RaiseRule):
    """Raise rule for narrow instances with heights (Section 6.1).

    ``delta = s / (1 + 2 h(d) |pi|^2)``; ``alpha`` grows by ``delta`` and
    each critical ``beta(e)`` by ``2 |pi| delta``, so the constraint
    ``alpha + h * sum beta`` gains ``delta (1 + 2 h |pi|^2) = s`` exactly.
    """

    use_height_rule = True
    use_alpha = True

    def delta(self, d: DemandInstance, slack: float, n_critical: int) -> float:
        return slack / (1.0 + 2.0 * d.height * n_critical * n_critical)

    def beta_increment(self, delta: float, n_critical: int) -> float:
        return 2.0 * n_critical * delta

    def objective_increase_factor(self, n_critical: int) -> float:
        # alpha gains delta; each of the n critical betas gains 2 n delta.
        return 1.0 + 2.0 * n_critical * n_critical
