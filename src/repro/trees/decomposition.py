"""Tree decompositions (Section 4.1).

A tree decomposition of a tree-network ``T`` is a rooted tree ``H`` over
the same vertex set such that

1. (LCA property) every path in ``T`` through vertices ``x`` and ``y``
   also passes through ``LCA_H(x, y)``; equivalently, the minimum-depth
   ``H``-node on any ``T``-path is unique, and
2. (component property) for every node ``z``, the set ``C(z)`` of ``z``
   and its ``H``-descendants induces a connected subtree of ``T``.

Its efficacy is measured by its *depth* and its *pivot size*
``theta = max_z |Gamma[C(z)]|``.  This module provides the decomposition
container, pivot-set computation, capture nodes, and a full verifier used
throughout the test suite.
"""
from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.demand import DemandInstance
from repro.core.types import Vertex
from repro.trees.tree import TreeNetwork


class InvalidDecompositionError(ValueError):
    """Raised when a claimed tree decomposition violates its properties."""


class TreeDecomposition:
    """A rooted tree ``H`` over the vertex set of a tree-network ``T``."""

    def __init__(self, network: TreeNetwork, parent: Dict[Vertex, Optional[Vertex]]):
        self.network = network
        self.parent = dict(parent)
        roots = [v for v, p in self.parent.items() if p is None]
        if len(roots) != 1:
            raise InvalidDecompositionError(
                f"expected exactly one root, found {len(roots)}"
            )
        self.root = roots[0]
        if set(self.parent) != set(network.vertices):
            raise InvalidDecompositionError(
                "decomposition must cover exactly the network's vertices"
            )
        self.children: Dict[Vertex, List[Vertex]] = {v: [] for v in self.parent}
        for v, p in self.parent.items():
            if p is not None:
                if p not in self.children:
                    raise InvalidDecompositionError(f"unknown parent {p}")
                self.children[p].append(v)
        for kids in self.children.values():
            kids.sort()
        self._index_tree()
        self._pivot_sets: Optional[Dict[Vertex, FrozenSet[Vertex]]] = None

    def _index_tree(self) -> None:
        """DFS order, depths (root has depth 1) and Euler intervals."""
        self.depth: Dict[Vertex, int] = {}
        self._tin: Dict[Vertex, int] = {}
        self._tout: Dict[Vertex, int] = {}
        clock = 0
        stack: List[Tuple[Vertex, bool]] = [(self.root, False)]
        self.depth[self.root] = 1
        visited = 0
        while stack:
            v, done = stack.pop()
            if done:
                self._tout[v] = clock
                continue
            self._tin[v] = clock
            clock += 1
            visited += 1
            stack.append((v, True))
            for c in self.children[v]:
                if c in self.depth:
                    raise InvalidDecompositionError("cycle in decomposition tree")
                self.depth[c] = self.depth[v] + 1
                stack.append((c, False))
        if visited != len(self.parent):
            raise InvalidDecompositionError("decomposition tree is disconnected")

    # ------------------------------------------------------------------
    @property
    def max_depth(self) -> int:
        """Depth of ``H`` (root at depth 1, per the paper)."""
        return max(self.depth.values())

    def is_ancestor_or_self(self, z: Vertex, x: Vertex) -> bool:
        """Whether ``x in C(z)``, i.e. ``z`` is ``x`` or an ancestor of it."""
        return self._tin[z] <= self._tin[x] and self._tin[x] <= self._tout[z] - 1

    def component_of(self, z: Vertex) -> FrozenSet[Vertex]:
        """``C(z)``: ``z`` together with its descendants in ``H``."""
        out = []
        stack = [z]
        while stack:
            v = stack.pop()
            out.append(v)
            stack.extend(self.children[v])
        return frozenset(out)

    def ancestors_or_self(self, x: Vertex) -> List[Vertex]:
        """``x`` and all its ancestors, bottom-up."""
        out = [x]
        p = self.parent[x]
        while p is not None:
            out.append(p)
            p = self.parent[p]
        return out

    # ------------------------------------------------------------------
    # Pivot sets
    # ------------------------------------------------------------------
    def _compute_pivot_sets(self) -> Dict[Vertex, FrozenSet[Vertex]]:
        """All pivot sets ``chi(z) = Gamma[C(z)]`` in ``O(#edges * depth)``.

        For a network edge ``(x, y)``: ``y in chi(z)`` exactly when
        ``x in C(z)`` and ``y not in C(z)``; the nodes with ``x in C(z)``
        are the ancestors-or-self of ``x`` in ``H``.
        """
        pivots: Dict[Vertex, Set[Vertex]] = {v: set() for v in self.parent}
        for (_, x, y) in self.network.edges():
            for z in self.ancestors_or_self(x):
                if not self.is_ancestor_or_self(z, y):
                    pivots[z].add(y)
            for z in self.ancestors_or_self(y):
                if not self.is_ancestor_or_self(z, x):
                    pivots[z].add(x)
        return {v: frozenset(s) for v, s in pivots.items()}

    def pivot_set(self, z: Vertex) -> FrozenSet[Vertex]:
        """``chi(z)``: the neighborhood of ``C(z)`` in the network."""
        if self._pivot_sets is None:
            self._pivot_sets = self._compute_pivot_sets()
        return self._pivot_sets[z]

    @property
    def pivot_size(self) -> int:
        """``theta``: the maximum pivot-set cardinality over all nodes."""
        if self._pivot_sets is None:
            self._pivot_sets = self._compute_pivot_sets()
        return max(len(s) for s in self._pivot_sets.values())

    # ------------------------------------------------------------------
    # Capture nodes
    # ------------------------------------------------------------------
    def capture_node(self, d: DemandInstance) -> Vertex:
        """``mu(d)``: the least-depth ``H``-node on ``path(d)``.

        Uniqueness is guaranteed by the LCA property of tree
        decompositions (and asserted by :meth:`verify`).
        """
        return min(d.path_vertex_seq, key=lambda v: (self.depth[v], v))

    def capture_node_of_path(self, path_vertices: Sequence[Vertex]) -> Vertex:
        """``mu`` for an explicit vertex path."""
        return min(path_vertices, key=lambda v: (self.depth[v], v))

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, exhaustive_pairs: bool = True) -> None:
        """Check both tree-decomposition properties; raise on violation.

        With ``exhaustive_pairs`` the LCA property is checked for every
        vertex pair (quadratic; meant for tests).
        """
        net = self.network
        for z in self.parent:
            comp = self.component_of(z)
            if not net.is_component(comp):
                raise InvalidDecompositionError(
                    f"C({z}) does not induce a connected subtree"
                )
        if exhaustive_pairs:
            verts = net.vertices
            for i, x in enumerate(verts):
                for y in verts[i + 1 :]:
                    path = net.path_vertices(x, y)
                    w = self._lca(x, y)
                    if w not in path:
                        raise InvalidDecompositionError(
                            f"path {x}..{y} misses LCA_H({x},{y}) = {w}"
                        )

    def _lca(self, u: Vertex, v: Vertex) -> Vertex:
        du, dv = self.depth[u], self.depth[v]
        while du > dv:
            u = self.parent[u]  # type: ignore[assignment]
            du -= 1
        while dv > du:
            v = self.parent[v]  # type: ignore[assignment]
            dv -= 1
        while u != v:
            u = self.parent[u]  # type: ignore[assignment]
            v = self.parent[v]  # type: ignore[assignment]
        return u

    def __repr__(self) -> str:
        return (
            f"TreeDecomposition(network={self.network.network_id}, "
            f"depth={self.max_depth}, n={len(self.parent)})"
        )
