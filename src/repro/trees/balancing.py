"""Balancing tree decomposition (Section 4.2, procedure BuildBalTD).

Recursively split each component by a balancer (centroid): the balancer
becomes the root and the recursive decompositions of the split components
become its children.  The depth is at most ``ceil(log2 n)`` (component
sizes at least halve per level, counting the depth of a singleton as 1),
but the pivot size can grow to ``Theta(log n)`` because the neighborhood
of ``C(z)`` may contain every ancestor balancer.
"""
from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.core.types import Vertex
from repro.trees.decomposition import TreeDecomposition
from repro.trees.tree import TreeNetwork


def build_balancing(network: TreeNetwork) -> TreeDecomposition:
    """Build the balancing decomposition of *network* (BuildBalTD)."""
    parent: Dict[Vertex, Optional[Vertex]] = {}

    def build(component: FrozenSet[Vertex], parent_node: Optional[Vertex]) -> Vertex:
        z = network.balancer(component)
        parent[z] = parent_node
        for piece in network.split_component(component, z):
            build(piece, z)
        return z

    build(frozenset(network.vertices), None)
    return TreeDecomposition(network, parent)
