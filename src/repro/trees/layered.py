"""Layered decompositions (Section 4.4).

A layered decomposition of a tree-network ``T`` is a partitioning
``sigma`` of ``D(T)`` into groups ``G1..Gl`` plus a map ``pi`` assigning
each instance a set of *critical edges* on its path, such that whenever
``d1 in Gi`` and ``d2 in Gj`` with ``i <= j`` overlap, ``path(d2)``
includes a critical edge of ``d1``.  This is exactly the interference
property the two-phase framework needs.

Lemma 4.2 turns any tree decomposition with pivot size ``theta`` and
depth ``l`` into a layered decomposition with ``Delta = 2 (theta + 1)``
and length ``l``: instances captured at depth ``i`` of ``H`` go into
group ``l - i + 1`` (deepest first), and the critical edges of ``d`` are
the wings of its capture node plus, for each pivot ``u`` of
``C(mu(d))``, the wings of the bending point of ``d`` w.r.t. ``u``.

With the ideal decomposition this yields ``Delta = 6`` and length
``O(log n)`` (Lemma 4.3).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.demand import DemandInstance
from repro.core.types import EdgeKey, InstanceId, Vertex, edge_key
from repro.trees.decomposition import TreeDecomposition
from repro.trees.tree import TreeNetwork


class LayeredDecompositionError(ValueError):
    """Raised when a layered decomposition violates its defining property."""


def wings(d: DemandInstance, y: Vertex) -> Tuple[EdgeKey, ...]:
    """The wing(s) of ``y`` on ``path(d)``: path edges adjacent to ``y``.

    One edge if ``y`` is an endpoint of the path, two otherwise.
    """
    seq = d.path_vertex_seq
    try:
        i = seq.index(y)
    except ValueError:
        raise LayeredDecompositionError(f"{y} is not on the path of instance {d.instance_id}")
    out: List[EdgeKey] = []
    if i > 0:
        out.append(edge_key(d.network_id, seq[i - 1], seq[i]))
    if i < len(seq) - 1:
        out.append(edge_key(d.network_id, seq[i], seq[i + 1]))
    return tuple(out)


def bending_point(network: TreeNetwork, d: DemandInstance, u: Vertex) -> Vertex:
    """The bending point of ``d`` w.r.t. ``u``.

    The unique vertex ``y`` on ``path(d)`` such that the path from ``u``
    to ``y`` avoids every other vertex of ``path(d)`` -- equivalently,
    the vertex of ``path(d)`` closest to ``u`` in the tree.
    """
    on_path = set(d.path_vertex_seq)
    if u in on_path:
        return u
    for x in network.path_vertices(u, d.path_vertex_seq[0]):
        if x in on_path:
            return x
    raise AssertionError("path to an endpoint must hit the demand path")  # pragma: no cover


@dataclass
class LayeredDecomposition:
    """Groups ``sigma`` and critical edges ``pi`` for one network's instances."""

    network_id: int
    #: instance id -> group index ``k`` (1-based; group 1 is processed first).
    group_of: Dict[InstanceId, int]
    #: instance id -> critical edges ``pi(d)`` (a subset of ``path(d)``).
    pi: Dict[InstanceId, Tuple[EdgeKey, ...]]
    #: number of groups ``l``.
    length: int

    @property
    def critical_set_size(self) -> int:
        """``Delta``: the largest critical set over all instances."""
        if not self.pi:
            return 0
        return max(len(edges) for edges in self.pi.values())

    def verify(self, instances: Sequence[DemandInstance]) -> None:
        """Check the layered-decomposition property exhaustively.

        For every ordered pair ``(d1, d2)`` with ``group(d1) <=
        group(d2)`` that overlaps, ``path(d2)`` must include a critical
        edge of ``d1``.  Quadratic; intended for tests and benches.
        """
        for d in instances:
            if d.instance_id not in self.group_of:
                raise LayeredDecompositionError(f"instance {d.instance_id} has no group")
            crit = self.pi[d.instance_id]
            if not crit:
                raise LayeredDecompositionError(f"instance {d.instance_id} has empty pi")
            if not set(crit) <= d.path_edges:
                raise LayeredDecompositionError(
                    f"critical edges of {d.instance_id} leave its path"
                )
        for d1 in instances:
            for d2 in instances:
                if d1.instance_id == d2.instance_id:
                    continue
                if self.group_of[d1.instance_id] > self.group_of[d2.instance_id]:
                    continue
                if not d1.overlaps(d2):
                    continue
                if d2.path_edges.isdisjoint(self.pi[d1.instance_id]):
                    raise LayeredDecompositionError(
                        f"overlapping pair ({d1.instance_id} -> {d2.instance_id}) "
                        f"violates the layered property"
                    )


def layered_from_tree_decomposition(
    decomposition: TreeDecomposition,
    instances: Sequence[DemandInstance],
) -> LayeredDecomposition:
    """Lemma 4.2: transform a tree decomposition into a layered one.

    Produces critical sets of size at most ``2 (theta + 1)`` and length
    equal to the decomposition depth.  Instances captured deepest in
    ``H`` land in group 1 (processed first).
    """
    network = decomposition.network
    depth_of_tree = decomposition.max_depth
    group_of: Dict[InstanceId, int] = {}
    pi: Dict[InstanceId, Tuple[EdgeKey, ...]] = {}
    for d in instances:
        if d.network_id != network.network_id:
            raise LayeredDecompositionError(
                f"instance {d.instance_id} belongs to network {d.network_id}, "
                f"not {network.network_id}"
            )
        z = decomposition.capture_node(d)
        group_of[d.instance_id] = depth_of_tree - decomposition.depth[z] + 1
        critical: Set[EdgeKey] = set(wings(d, z))
        for u in decomposition.pivot_set(z):
            y = bending_point(network, d, u)
            critical.update(wings(d, y))
        pi[d.instance_id] = tuple(sorted(critical))
    return LayeredDecomposition(
        network_id=network.network_id,
        group_of=group_of,
        pi=pi,
        length=depth_of_tree,
    )
