"""Root-fixing tree decomposition (Section 4.2).

Pick an arbitrary root ``g`` and use the tree itself, rooted at ``g``, as
the decomposition.  Every component ``C(z)`` is the subtree under ``z``
and has exactly one neighbor (the parent of ``z``), so the pivot size is
``theta = 1`` -- but the depth can be as large as ``n``.

The sequential algorithm of Appendix A implicitly uses this
decomposition.
"""
from __future__ import annotations

from typing import Dict, Optional

from repro.core.types import Vertex
from repro.trees.decomposition import TreeDecomposition
from repro.trees.tree import TreeNetwork


def build_root_fixing(network: TreeNetwork, root: Optional[Vertex] = None) -> TreeDecomposition:
    """Build the root-fixing decomposition of *network*.

    Parameters
    ----------
    network:
        The tree-network ``T``.
    root:
        The root ``g``; defaults to the smallest vertex.
    """
    if root is None:
        root = network.vertices[0]
    if not network.has_vertex(root):
        raise ValueError(f"root {root} is not a vertex of the network")
    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    frontier = [root]
    while frontier:
        nxt = []
        for u in frontier:
            for w in network.neighbors(u):
                if w not in parent:
                    parent[w] = u
                    nxt.append(w)
        frontier = nxt
    return TreeDecomposition(network, parent)
