"""Tree-network substrate and the Section 4 decompositions."""
from repro.trees.balancing import build_balancing
from repro.trees.decomposition import (
    InvalidDecompositionError,
    TreeDecomposition,
)
from repro.trees.ideal import build_ideal
from repro.trees.layered import (
    LayeredDecomposition,
    LayeredDecompositionError,
    bending_point,
    layered_from_tree_decomposition,
    wings,
)
from repro.trees.root_fixing import build_root_fixing
from repro.trees.tree import NotATreeError, TreeNetwork, make_line_network

__all__ = [
    "InvalidDecompositionError",
    "LayeredDecomposition",
    "LayeredDecompositionError",
    "NotATreeError",
    "TreeDecomposition",
    "TreeNetwork",
    "bending_point",
    "build_balancing",
    "build_ideal",
    "build_root_fixing",
    "layered_from_tree_decomposition",
    "make_line_network",
    "wings",
]
