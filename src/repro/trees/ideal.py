"""The ideal tree decomposition (Section 4.3, Lemma 4.1).

Combines the strengths of the two simple decompositions: depth
``O(log n)`` *and* pivot size ``theta <= 2``.  The construction recurses
on components with at most two outside neighbors, splitting each by a
balancer ``z``; when both neighbor-entry points fall into the same split
component, an extra *junction* node ``j`` (the median of the two outside
neighbors and ``z``) is interposed so that every recursive component
again has at most two neighbors (case 2(b) of the paper).

Each recursion level adds at most two nodes (junction + balancer) to the
depth while at least halving component sizes, giving depth at most
``2 ceil(log2 n)`` (counting a singleton's depth as 1).
"""
from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.types import Vertex
from repro.trees.decomposition import InvalidDecompositionError, TreeDecomposition
from repro.trees.tree import TreeNetwork


def _entry_vertex(network: TreeNetwork, outside: Vertex, component: FrozenSet[Vertex]) -> Vertex:
    """The unique vertex of *component* adjacent to *outside* (``u'_i``).

    Uniqueness holds because two entry vertices would close a cycle in
    the tree.
    """
    entries = [w for w in network.neighbors(outside) if w in component]
    if len(entries) != 1:
        raise InvalidDecompositionError(
            f"outside neighbor {outside} touches component at {entries}"
        )
    return entries[0]


def build_ideal(network: TreeNetwork) -> TreeDecomposition:
    """Build the ideal tree decomposition of *network* (Lemma 4.1)."""
    parent: Dict[Vertex, Optional[Vertex]] = {}

    def attach(child: Vertex, parent_node: Optional[Vertex]) -> None:
        if child in parent:
            raise InvalidDecompositionError(f"vertex {child} attached twice")
        parent[child] = parent_node

    def build(
        component: FrozenSet[Vertex],
        neighbors: Tuple[Vertex, ...],
        parent_node: Optional[Vertex],
    ) -> Vertex:
        """BuildIdealTD: returns the root of the decomposition of *component*.

        Precondition: ``neighbors = Gamma[component]`` and has size <= 2.
        """
        if len(neighbors) > 2:
            raise InvalidDecompositionError(
                f"precondition violated: component has {len(neighbors)} neighbors"
            )
        if len(component) == 1:
            (v,) = component
            attach(v, parent_node)
            return v

        z = network.balancer(component)
        pieces = network.split_component(component, z)

        # Locate which split component each outside neighbor enters through.
        entry: Dict[Vertex, Vertex] = {}  # outside neighbor -> entry vertex u'_i
        home: Dict[Vertex, Optional[int]] = {}  # outside neighbor -> piece index
        for u in neighbors:
            up = _entry_vertex(network, u, component)
            entry[u] = up
            if up == z:
                home[u] = None
            else:
                home[u] = next(i for i, p in enumerate(pieces) if up in p)

        indices = [home[u] for u in neighbors if home[u] is not None]
        same_piece = len(indices) == 2 and indices[0] == indices[1]

        if not same_piece:
            # Cases 1 and 2(a): z becomes the root; each split piece
            # recurses with neighborhood {z} plus its entering outsiders.
            attach(z, parent_node)
            for i, piece in enumerate(pieces):
                gamma = tuple(
                    sorted({z} | {u for u in neighbors if home[u] == i})
                )
                build(piece, gamma, z)
            return z

        # Case 2(b): both entries in the same piece C1 -> junction.
        u1, u2 = neighbors
        c1 = pieces[indices[0]]
        j = network.median(u1, u2, z)
        if j not in c1:
            raise InvalidDecompositionError("junction fell outside component C1")
        attach(j, parent_node)
        attach(z, j)

        # The first vertex after j on the path j ~> z; if it is z itself,
        # no sub-piece of C1 lies between the junction and the balancer.
        toward_z = network.path_vertices(j, z)[1]
        z_entry: Optional[Vertex] = None if toward_z == z else toward_z

        sub_pieces = (
            network.split_component(c1, j) if len(c1) > 1 else []
        )
        for piece in sub_pieces:
            gamma_set = {j}
            if z_entry is not None and z_entry in piece:
                gamma_set.add(z)
            if entry[u1] in piece:
                gamma_set.add(u1)
            if entry[u2] in piece:
                gamma_set.add(u2)
            gamma = tuple(sorted(gamma_set))
            # Pieces between the junction and the balancer hang under z
            # (they are part of C(z) in H); everything else under j.
            if z_entry is not None and z_entry in piece:
                build(piece, gamma, z)
            else:
                build(piece, gamma, j)

        # Remaining split pieces of C - z (other than C1) hang under z.
        for i, piece in enumerate(pieces):
            if i == indices[0]:
                continue
            gamma = tuple(sorted({z} | {u for u in neighbors if home[u] == i}))
            build(piece, gamma, z)
        return j

    vertices = frozenset(network.vertices)
    if len(vertices) == 1:
        (v,) = vertices
        return TreeDecomposition(network, {v: None})

    # Top level: split the whole vertex set by a balancer g; every piece
    # then has exactly one neighbor, {g}, satisfying the precondition.
    g = network.balancer(vertices)
    attach(g, None)
    for piece in network.split_component(vertices, g):
        build(piece, (g,), g)
    return TreeDecomposition(network, parent)
