"""Tree-network substrate.

A :class:`TreeNetwork` is the paper's tree-network ``T``: an undirected
tree over a set of integer vertices.  It provides the primitive queries
every other layer is built on:

* unique paths between vertex pairs (``path_vertices`` / ``path_edges``),
* least common ancestors with respect to an arbitrary internal root,
* component manipulation (split by a vertex, neighborhoods ``Gamma[C]``),
* balancers (centroids) and medians (junctions), used by the tree
  decompositions of Section 4.

Line-networks are path-shaped tree-networks (see :mod:`repro.lines.line`),
so Sections 5-7 of the paper all run on this one substrate.
"""
from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.types import EdgeKey, NetworkId, Vertex, edge_key


class NotATreeError(ValueError):
    """Raised when the supplied edge set does not form a tree."""


class TreeNetwork:
    """An undirected tree over integer vertices, with path/LCA queries.

    Parameters
    ----------
    network_id:
        Identifier of this network; baked into every :data:`EdgeKey`.
    edges:
        Iterable of ``(u, v)`` pairs.  They must form a connected acyclic
        graph (a tree).  A single-vertex network may be created by passing
        no edges and ``vertices={v}``.
    vertices:
        Optional explicit vertex set; defaults to the endpoints of *edges*.
    """

    def __init__(
        self,
        network_id: NetworkId,
        edges: Iterable[Tuple[Vertex, Vertex]],
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> None:
        self.network_id = network_id
        self._adj: Dict[Vertex, List[Vertex]] = {}
        if vertices is not None:
            for v in vertices:
                self._adj.setdefault(int(v), [])
        edge_list = [(int(u), int(v)) for u, v in edges]
        for u, v in edge_list:
            if u == v:
                raise NotATreeError(f"self-loop ({u}, {v})")
            self._adj.setdefault(u, [])
            self._adj.setdefault(v, [])
            self._adj[u].append(v)
            self._adj[v].append(u)
        if not self._adj:
            raise NotATreeError("a tree-network needs at least one vertex")
        if len(edge_list) != len(self._adj) - 1:
            raise NotATreeError(
                f"{len(edge_list)} edges over {len(self._adj)} vertices cannot be a tree"
            )
        self._vertices: Tuple[Vertex, ...] = tuple(sorted(self._adj))
        self._root = self._vertices[0]
        self._parent: Dict[Vertex, Optional[Vertex]] = {}
        self._depth: Dict[Vertex, int] = {}
        self._build_rooted_index()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices in this network."""
        return len(self._vertices)

    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        """All vertices, sorted ascending."""
        return self._vertices

    def edges(self) -> List[EdgeKey]:
        """All edges of the network as canonical :data:`EdgeKey` triples."""
        out = []
        for u in self._vertices:
            for v in self._adj[u]:
                if u < v:
                    out.append(edge_key(self.network_id, u, v))
        return out

    def neighbors(self, v: Vertex) -> Tuple[Vertex, ...]:
        """Vertices adjacent to *v*."""
        return tuple(self._adj[v])

    def degree(self, v: Vertex) -> int:
        """Degree of vertex *v*."""
        return len(self._adj[v])

    def has_vertex(self, v: Vertex) -> bool:
        """Whether *v* belongs to this network."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the edge ``(u, v)`` belongs to this network."""
        return u in self._adj and v in self._adj[u]

    def edge(self, u: Vertex, v: Vertex) -> EdgeKey:
        """Canonical key of the existing edge ``(u, v)``."""
        if not self.has_edge(u, v):
            raise KeyError(f"({u}, {v}) is not an edge of network {self.network_id}")
        return edge_key(self.network_id, u, v)

    def is_path_graph(self) -> bool:
        """Whether the network is a line (every vertex has degree <= 2)."""
        return all(len(self._adj[v]) <= 2 for v in self._vertices)

    # ------------------------------------------------------------------
    # Rooted index and path queries
    # ------------------------------------------------------------------
    def _build_rooted_index(self) -> None:
        """BFS from an arbitrary fixed root, recording parent and depth."""
        root = self._root
        parent: Dict[Vertex, Optional[Vertex]] = {root: None}
        depth: Dict[Vertex, int] = {root: 0}
        frontier = [root]
        while frontier:
            nxt: List[Vertex] = []
            for u in frontier:
                for w in self._adj[u]:
                    if w not in depth:
                        parent[w] = u
                        depth[w] = depth[u] + 1
                        nxt.append(w)
            frontier = nxt
        if len(depth) != len(self._adj):
            raise NotATreeError("edge set is not connected")
        self._parent = parent
        self._depth = depth

    @property
    def root(self) -> Vertex:
        """The fixed internal root (smallest vertex)."""
        return self._root

    def parent_of(self, v: Vertex) -> Optional[Vertex]:
        """Parent of *v* w.r.t. the internal root (None for the root)."""
        return self._parent[v]

    def depth_of(self, v: Vertex) -> int:
        """Depth of *v* w.r.t. the internal root (root has depth 0)."""
        return self._depth[v]

    def children_of(self, v: Vertex) -> Tuple[Vertex, ...]:
        """Children of *v* w.r.t. the internal root."""
        return tuple(w for w in self._adj[v] if self._parent.get(w) == v)

    def lca(self, u: Vertex, v: Vertex) -> Vertex:
        """Least common ancestor of *u* and *v* w.r.t. the internal root."""
        du, dv = self._depth[u], self._depth[v]
        while du > dv:
            u = self._parent[u]  # type: ignore[assignment]
            du -= 1
        while dv > du:
            v = self._parent[v]  # type: ignore[assignment]
            dv -= 1
        while u != v:
            u = self._parent[u]  # type: ignore[assignment]
            v = self._parent[v]  # type: ignore[assignment]
        return u

    def path_vertices(self, u: Vertex, v: Vertex) -> Tuple[Vertex, ...]:
        """The unique path from *u* to *v*, inclusive of both endpoints."""
        if u not in self._adj or v not in self._adj:
            raise KeyError(f"({u}, {v}) not in network {self.network_id}")
        w = self.lca(u, v)
        up: List[Vertex] = []
        x = u
        while x != w:
            up.append(x)
            x = self._parent[x]  # type: ignore[assignment]
        down: List[Vertex] = []
        x = v
        while x != w:
            down.append(x)
            x = self._parent[x]  # type: ignore[assignment]
        return tuple(up + [w] + list(reversed(down)))

    def path_edges(self, u: Vertex, v: Vertex) -> Tuple[EdgeKey, ...]:
        """Edges of the unique path from *u* to *v*, in path order."""
        verts = self.path_vertices(u, v)
        nid = self.network_id
        return tuple(edge_key(nid, a, b) for a, b in zip(verts, verts[1:]))

    def distance(self, u: Vertex, v: Vertex) -> int:
        """Number of edges on the unique path between *u* and *v*."""
        w = self.lca(u, v)
        return self._depth[u] + self._depth[v] - 2 * self._depth[w]

    # ------------------------------------------------------------------
    # Component operations (Section 4 machinery)
    # ------------------------------------------------------------------
    def is_component(self, component: Iterable[Vertex]) -> bool:
        """Whether *component* induces a connected subtree of this network."""
        comp = set(component)
        if not comp:
            return False
        if not comp <= set(self._adj):
            return False
        start = next(iter(comp))
        seen = {start}
        stack = [start]
        while stack:
            x = stack.pop()
            for w in self._adj[x]:
                if w in comp and w not in seen:
                    seen.add(w)
                    stack.append(w)
        return seen == comp

    def component_neighborhood(self, component: Iterable[Vertex]) -> FrozenSet[Vertex]:
        """``Gamma[C]``: vertices outside *component* adjacent to it."""
        comp = set(component)
        out: Set[Vertex] = set()
        for x in comp:
            for w in self._adj[x]:
                if w not in comp:
                    out.add(w)
        return frozenset(out)

    def split_component(
        self, component: Iterable[Vertex], pivot: Vertex
    ) -> List[FrozenSet[Vertex]]:
        """Split *component* by *pivot*: components of ``C - {pivot}``.

        This is the paper's "node z splits C into components C1..Cs".
        """
        comp = set(component)
        if pivot not in comp:
            raise ValueError(f"pivot {pivot} is not in the component")
        comp.discard(pivot)
        pieces: List[FrozenSet[Vertex]] = []
        unvisited = set(comp)
        for seed in self._adj[pivot]:
            if seed not in unvisited:
                continue
            piece = {seed}
            unvisited.discard(seed)
            stack = [seed]
            while stack:
                x = stack.pop()
                for w in self._adj[x]:
                    if w in unvisited:
                        unvisited.discard(w)
                        piece.add(w)
                        stack.append(w)
            pieces.append(frozenset(piece))
        if unvisited:
            raise ValueError("input set was not a connected component")
        return pieces

    def balancer(self, component: Iterable[Vertex]) -> Vertex:
        """A balancer (centroid) of *component*.

        Returns a vertex ``z`` such that every component of ``C - {z}`` has
        at most ``floor(|C|/2)`` vertices (the paper's balancer, Section 4.2;
        one always exists).
        """
        comp = set(component)
        if not comp:
            raise ValueError("empty component has no balancer")
        root = next(iter(comp))
        # Iterative post-order subtree sizes within the induced subtree.
        parent: Dict[Vertex, Optional[Vertex]] = {root: None}
        order: List[Vertex] = []
        stack = [root]
        seen = {root}
        while stack:
            x = stack.pop()
            order.append(x)
            for w in self._adj[x]:
                if w in comp and w not in seen:
                    seen.add(w)
                    parent[w] = x
                    stack.append(w)
        if len(seen) != len(comp):
            raise ValueError("input set is not a connected component")
        size = {v: 1 for v in comp}
        for x in reversed(order):
            p = parent[x]
            if p is not None:
                size[p] += size[x]
        total = len(comp)
        v = root
        while True:
            heavy = None
            for w in self._adj[v]:
                if w in comp and parent.get(w) == v and size[w] > total // 2:
                    heavy = w
                    break
            if heavy is None:
                return v
            v = heavy

    def median(self, a: Vertex, b: Vertex, c: Vertex) -> Vertex:
        """The unique vertex lying on all three pairwise paths of a, b, c.

        This is the "junction" of Section 4.3, case 2(b).
        """
        on_ab = set(self.path_vertices(a, b))
        for x in self.path_vertices(c, a):
            if x in on_ab:
                return x
        raise AssertionError("tree paths must intersect")  # pragma: no cover

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"TreeNetwork(id={self.network_id}, n={self.n_vertices}, "
            f"edges={self.n_vertices - 1})"
        )


def make_line_network(network_id: NetworkId, n_slots: int) -> TreeNetwork:
    """Build a line-network with *n_slots* timeslots.

    Timeslot ``t`` (``0 <= t < n_slots``) is the edge ``(t, t+1)``; the
    network is the path on vertices ``0..n_slots``.  This realizes the
    paper's reformulation of line-networks as timelines (Section 1).
    """
    if n_slots < 1:
        raise ValueError("a line-network needs at least one timeslot")
    return TreeNetwork(network_id, [(t, t + 1) for t in range(n_slots)])


def path_between(network: TreeNetwork, u: Vertex, v: Vertex) -> Tuple[EdgeKey, ...]:
    """Convenience alias for ``network.path_edges(u, v)``."""
    return network.path_edges(u, v)
